package engine

import (
	"bytes"
	"math/rand"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"
)

// propSeed resolves the seed for a property test: MMDB_PROP_SEED pins a
// replay, otherwise the clock picks one. The seed is always logged so a
// failure can be reproduced exactly.
func propSeed(t *testing.T) int64 {
	t.Helper()
	seed := time.Now().UnixNano()
	if s := os.Getenv("MMDB_PROP_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("MMDB_PROP_SEED=%q: %v", s, err)
		}
		seed = v
	}
	t.Logf("property seed %d (replay: MMDB_PROP_SEED=%d go test -run '%s')", seed, seed, t.Name())
	return seed
}

// roundHook is a re-armable pauseHook: the property tests park the
// checkpointer at a freshly chosen segment every round, so the channels
// are replaced on each arm instead of being one-shot.
type roundHook struct {
	mu         sync.Mutex
	pauseAfter int
	armed      bool
	paused     chan struct{} // closed when the checkpointer parks
	resume     chan struct{} // release closes to let it continue
}

func (h *roundHook) fn(_ uint64, _, segIdx int) error {
	h.mu.Lock()
	if !h.armed || segIdx != h.pauseAfter {
		h.mu.Unlock()
		return nil
	}
	h.armed = false
	paused, resume := h.paused, h.resume
	h.mu.Unlock()
	close(paused)
	<-resume
	return nil
}

func (h *roundHook) arm(after int) {
	h.mu.Lock()
	h.pauseAfter = after
	h.armed = true
	h.paused = make(chan struct{})
	h.resume = make(chan struct{})
	h.mu.Unlock()
}

func (h *roundHook) release() {
	h.mu.Lock()
	resume := h.resume
	h.mu.Unlock()
	close(resume)
}

func (h *roundHook) waitPaused(t *testing.T, what string) {
	t.Helper()
	h.mu.Lock()
	paused := h.paused
	h.mu.Unlock()
	select {
	case <-paused:
	case <-time.After(10 * time.Second):
		t.Fatalf("%s: checkpointer never parked", what)
	}
}

// TestZigzagInvariantsProperty drives 100 seeded rounds of writes
// interleaved with a checkpoint parked at a random segment and checks the
// dual-bit invariants that make ZIGZAG's unlatched flush safe:
//
//  1. ZigPending tracks "no install this run" exactly: a segment flips on
//     its first mid-run write and never again (the flip count equals the
//     number of first-written segments).
//  2. The begin-state image survives the run unmodified — on the live
//     slab while ZigPending, parked on the shadow slab after a flip.
//  3. SnapNeed is consumed exactly by the sweep: cleared for processed
//     segments, still armed for the rest (Full run), and empty once the
//     checkpoint finishes.
func TestZigzagInvariantsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(propSeed(t)))

	p := testParams(t, Zigzag)
	p.Full = true
	p.SyncCommit = false // correctness invariants don't need fsync; keep 100 rounds fast
	hook := &roundHook{}
	p.SegmentHook = hook.fn
	e := mustOpen(t, p)
	defer e.Close()

	n := e.store.NumSegments()
	segBytes := e.store.Config().SegmentBytes
	recs := int(e.NumRecords())
	recsPerSeg := recs / n
	oracle := make([]uint64, recs)
	write := func(rid uint64, v uint64) {
		t.Helper()
		if err := e.ExecWrite(rid, encVal(v)); err != nil {
			t.Fatal(err)
		}
		oracle[rid] = v
	}

	begin := make([][]byte, n)
	for i := range begin {
		begin[i] = make([]byte, segBytes)
	}

	const rounds = 100
	for round := 0; round < rounds; round++ {
		for k, kn := 0, 4+rng.Intn(8); k < kn; k++ {
			write(uint64(rng.Intn(recs)), uint64(round+1)<<16|uint64(k+1))
		}
		// Snapshot the begin-state image: nothing commits between here and
		// the checkpoint's τ, so this is exactly what the run must preserve.
		for i := 0; i < n; i++ {
			seg := e.store.Seg(i)
			seg.Lock()
			copy(begin[i], seg.Data)
			seg.Unlock()
		}

		pauseAfter := rng.Intn(n)
		hook.arm(pauseAfter)
		flips0 := e.Stats().ZigzagFlips
		ckptErr := make(chan error, 1)
		go func() {
			_, err := e.Checkpoint()
			ckptErr <- err
		}()
		hook.waitPaused(t, "zigzag round")

		// Mid-run writes: the first write to each segment must flip it,
		// re-writes must not flip again.
		written := make(map[int]bool)
		for k, kn := 0, rng.Intn(12); k < kn; k++ {
			rid := uint64(rng.Intn(recs))
			write(rid, uint64(round+1)<<16|0x8000|uint64(k))
			written[int(rid)/recsPerSeg] = true
		}

		for i := 0; i < n; i++ {
			seg := e.store.Seg(i)
			seg.Lock()
			zig, snap := seg.ZigPending, seg.SnapNeed
			img := seg.Shadow
			if zig {
				img = seg.Data
			}
			preserved := bytes.Equal(img, begin[i])
			seg.Unlock()
			if zig == written[i] {
				t.Fatalf("round %d seg %d: ZigPending=%v but written-this-run=%v (must flip exactly on first write)",
					round, i, zig, written[i])
			}
			if !preserved {
				t.Fatalf("round %d seg %d: begin-state image lost (ZigPending=%v)", round, i, zig)
			}
			if want := i > pauseAfter; snap != want {
				t.Fatalf("round %d seg %d: SnapNeed=%v, want %v (sweep parked after seg %d)",
					round, i, snap, want, pauseAfter)
			}
		}
		if flips := e.Stats().ZigzagFlips - flips0; flips != uint64(len(written)) {
			t.Fatalf("round %d: %d flips for %d first-written segments (must flip once per segment per run)",
				round, flips, len(written))
		}

		hook.release()
		if err := <-ckptErr; err != nil {
			t.Fatalf("round %d: checkpoint: %v", round, err)
		}
		for i := 0; i < n; i++ {
			seg := e.store.Seg(i)
			seg.Lock()
			snap := seg.SnapNeed
			seg.Unlock()
			if snap {
				t.Fatalf("round %d seg %d: SnapNeed survived the checkpoint", round, i)
			}
		}
	}

	for rid := 0; rid < recs; rid++ {
		if got := readVal(t, e, uint64(rid)); got != oracle[rid] {
			t.Fatalf("record %d = %d, want %d", rid, got, oracle[rid])
		}
	}
}

// TestZigzagWriteAllocationFree pins the ZIGZAG write path — including
// the flip itself — at zero heap allocations per operation: the flip is
// a copy onto the preallocated shadow slab plus a pointer swap, never an
// allocation. The checkpoint is parked mid-sweep so every measured write
// runs against an active run, and the segment is re-armed before each
// write so the flip branch executes every iteration.
func TestZigzagWriteAllocationFree(t *testing.T) {
	p := testParams(t, Zigzag)
	p.Full = true
	hook := &roundHook{}
	p.SegmentHook = hook.fn
	e := mustOpen(t, p)
	defer e.Close()

	val := encVal(7)
	for i := 0; i < 64; i++ { // idle-path warm-up (txn slot, freelist, lock table)
		if err := e.ExecWrite(3, val); err != nil {
			t.Fatal(err)
		}
	}

	hook.arm(0)
	ckptErr := make(chan error, 1)
	go func() {
		_, err := e.Checkpoint()
		ckptErr <- err
	}()
	hook.waitPaused(t, "zigzag alloc guard")

	seg := e.store.Seg(0) // record 3 lives in segment 0
	flipWrite := func() {
		seg.Lock()
		seg.ZigPending = true
		seg.Unlock()
		if err := e.ExecWrite(3, val); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 64; i++ { // in-run warm-up
		flipWrite()
	}
	flips0 := e.Stats().ZigzagFlips
	allocs := testing.AllocsPerRun(512, flipWrite)
	if allocs != 0 {
		t.Errorf("zigzag flip write: %v allocs/op, want 0", allocs)
	}
	if flips := e.Stats().ZigzagFlips - flips0; flips < 512 {
		t.Errorf("only %d flips measured, want >= 512 (the flip branch must run every iteration)", flips)
	}

	hook.release()
	if err := <-ckptErr; err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
}
