package obs

import (
	"sort"
	"sync/atomic"
	"time"
)

// SlowOpKind names the operation class a watchdog threshold covers.
type SlowOpKind uint8

const (
	WatchCommit SlowOpKind = iota + 1
	WatchCheckpoint
)

// String returns the slow-op kind's wire name.
func (k SlowOpKind) String() string {
	switch k {
	case WatchCommit:
		return "commit"
	case WatchCheckpoint:
		return "checkpoint"
	default:
		return "unknown"
	}
}

// SlowOp is one watchdog trip: an operation that exceeded its threshold,
// with the flight-recorder span tree rooted at the offending operation
// captured at trip time.
type SlowOp struct {
	Kind SlowOpKind
	// Nanos is the wall-clock time (UnixNano) the trip was recorded.
	Nanos int64
	// Dur is the offending operation's duration in nanoseconds.
	Dur int64
	// Root is the offending operation's span, or SpanNone when the
	// operation was not sampled (the dump then carries whatever recent
	// history the ring holds, with no tree filter).
	Root SpanID
	// Spans is the offending span tree (the root and its descendants) in
	// begin order, or the full retained ring when Root is SpanNone.
	Spans []Span
}

// watchdogKeep is how many recent slow-op dumps the watchdog retains.
const watchdogKeep = 8

// Watchdog watches commit and checkpoint durations against configured
// thresholds and, on a threshold-exceeded operation, captures a torn-free
// flight-recorder dump of the offending span tree. Check is hot-path
// safe: one atomic load and a compare when the operation is under
// threshold (or the threshold is unset). The dump ring is lock-free —
// trips publish via atomic pointers, so no lock ordering is involved.
type Watchdog struct {
	spans        *SpanTracer
	commitThresh atomic.Int64
	ckptThresh   atomic.Int64
	trips        atomic.Uint64
	ring         [watchdogKeep]atomic.Pointer[SlowOp]
}

// NewWatchdog returns a watchdog dumping from spans. Both thresholds
// start unset (disabled).
func NewWatchdog(spans *SpanTracer) *Watchdog {
	return &Watchdog{spans: spans}
}

// SetThresholds installs the commit and checkpoint duration thresholds;
// a zero (or negative) threshold disables that class.
func (w *Watchdog) SetThresholds(commit, checkpoint time.Duration) {
	if w == nil {
		return
	}
	w.commitThresh.Store(int64(commit))
	w.ckptThresh.Store(int64(checkpoint))
}

// Check tests one finished operation against its class threshold and
// trips the flight recorder if exceeded. Called from the commit and
// checkpoint paths on every operation, so the under-threshold path is a
// single atomic load.
//
// perf:hotpath(runs at the end of every commit)
func (w *Watchdog) Check(kind SlowOpKind, root SpanID, durNanos int64) {
	if w == nil {
		return
	}
	var thresh int64
	switch kind {
	case WatchCommit:
		thresh = w.commitThresh.Load()
	case WatchCheckpoint:
		thresh = w.ckptThresh.Load()
	}
	if thresh <= 0 || durNanos < thresh {
		return
	}
	w.trip(kind, root, durNanos)
}

// trip captures the dump and publishes it into the retained ring.
//
// alloc:allowed(fires only for threshold-exceeded slow operations, never on the steady-state commit path)
func (w *Watchdog) trip(kind SlowOpKind, root SpanID, durNanos int64) {
	dump := w.spans.Dump()
	if root != SpanNone {
		dump = SpanTree(dump, root)
	}
	op := &SlowOp{
		Kind:  kind,
		Nanos: time.Now().UnixNano(),
		Dur:   durNanos,
		Root:  root,
		Spans: dump,
	}
	i := w.trips.Add(1) - 1
	w.ring[i%watchdogKeep].Store(op)
}

// Trips returns how many slow operations have tripped the watchdog.
func (w *Watchdog) Trips() uint64 {
	if w == nil {
		return 0
	}
	return w.trips.Load()
}

// SlowOps returns the retained slow-op dumps, oldest first.
func (w *Watchdog) SlowOps() []SlowOp {
	if w == nil {
		return nil
	}
	var ops []SlowOp
	for i := range w.ring {
		if op := w.ring[i].Load(); op != nil {
			ops = append(ops, *op)
		}
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i].Nanos < ops[j].Nanos })
	return ops
}

// SpanTree filters a span dump down to the tree rooted at root: the root
// span itself plus every span whose parent chain reaches it, in begin
// order. Parent links always point at earlier tickets, so chains
// terminate.
//
// alloc:allowed(diagnostic filter; runs on watchdog trips and exposition, never on the steady-state commit path)
func SpanTree(spans []Span, root SpanID) []Span {
	if root == SpanNone {
		return nil
	}
	parent := make(map[SpanID]SpanID, len(spans))
	for _, s := range spans {
		parent[s.ID()] = s.Parent
	}
	var keep []Span
	for _, s := range spans {
		for id := s.ID(); id != SpanNone; id = parent[id] {
			if id == root {
				keep = append(keep, s)
				break
			}
		}
	}
	return keep
}
