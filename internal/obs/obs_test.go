package obs

import (
	"strings"
	"testing"
)

// TestRegistryNaming: the registry rejects malformed and duplicate names
// and accepts the mmdb_<subsystem>_<name>[_unit] shape.
func TestRegistryNaming(t *testing.T) {
	good := []string{
		"mmdb_engine_commit_seconds",
		"mmdb_wal_flush_batch_bytes",
		"mmdb_engine_txns_committed_total",
		"mmdb_kvstore_get_seconds",
	}
	for _, n := range good {
		if !ValidName(n) {
			t.Errorf("ValidName(%q) = false, want true", n)
		}
	}
	bad := []string{
		"mmdb_engine",         // missing <name>
		"engine_commit_total", // missing mmdb prefix
		"mmdb_Engine_commit",  // uppercase
		"mmdb_engine_commit-seconds",
		"mmdb__engine_commit",
		"mmdb_engine_commit ",
	}
	for _, n := range bad {
		if ValidName(n) {
			t.Errorf("ValidName(%q) = true, want false", n)
		}
	}

	r := NewRegistry()
	r.Counter("mmdb_test_ok_total", "")
	mustPanic(t, "duplicate", func() { r.Gauge("mmdb_test_ok_total", "") })
	mustPanic(t, "malformed", func() { r.Counter("bogus", "") })
	mustPanic(t, "zero scale", func() { r.Histogram("mmdb_test_h_seconds", "", 0) })
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s registration did not panic", what)
		}
	}()
	fn()
}

// TestRegistryGather: all metric kinds round-trip through Gather, sorted
// by name, with funcs evaluated at gather time.
func TestRegistryGather(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("mmdb_test_c_total", "a counter")
	g := r.Gauge("mmdb_test_b_gauge", "a gauge")
	h := r.Histogram("mmdb_test_a_seconds", "a histogram", ScaleNanosToSeconds)
	live := uint64(0)
	r.CounterFunc("mmdb_test_d_total", "a func counter", func() uint64 { return live })
	r.GaugeFunc("mmdb_test_e_ratio", "a func gauge", func() float64 { return 0.5 })

	c.Add(3)
	c.Inc()
	g.Set(2.25)
	h.Observe(1_000_000)
	live = 9

	pts := r.Gather()
	if len(pts) != 5 {
		t.Fatalf("gathered %d points, want 5", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i-1].Name >= pts[i].Name {
			t.Fatalf("points not sorted: %q before %q", pts[i-1].Name, pts[i].Name)
		}
	}
	byName := map[string]Point{}
	for _, p := range pts {
		byName[p.Name] = p
	}
	if p := byName["mmdb_test_c_total"]; p.Kind != KindCounter || p.Value != 4 {
		t.Fatalf("counter point = %+v", p)
	}
	if p := byName["mmdb_test_b_gauge"]; p.Kind != KindGauge || p.Value != 2.25 {
		t.Fatalf("gauge point = %+v", p)
	}
	if p := byName["mmdb_test_d_total"]; p.Kind != KindCounter || p.Value != 9 {
		t.Fatalf("func counter point = %+v (funcs must be read at gather time)", p)
	}
	if p := byName["mmdb_test_e_ratio"]; p.Kind != KindGauge || p.Value != 0.5 {
		t.Fatalf("func gauge point = %+v", p)
	}
	p := byName["mmdb_test_a_seconds"]
	if p.Kind != KindHistogram || p.Hist == nil || p.Hist.Count != 1 {
		t.Fatalf("histogram point = %+v", p)
	}
	if got := p.Hist.Quantile(1); got != 0.001 {
		t.Fatalf("histogram max = %v s, want 0.001", got)
	}
}

// TestRegistryFindNames: FindHistogram and Names.
func TestRegistryFindNames(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("mmdb_test_find_seconds", "", ScaleNanosToSeconds)
	r.Counter("mmdb_test_other_total", "")
	if got := r.FindHistogram("mmdb_test_find_seconds"); got != h {
		t.Fatal("FindHistogram did not return the registered histogram")
	}
	if got := r.FindHistogram("mmdb_test_missing_seconds"); got != nil {
		t.Fatal("FindHistogram on a missing name must return nil")
	}
	names := r.Names()
	want := []string{"mmdb_test_find_seconds", "mmdb_test_other_total"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Fatalf("Names = %v, want %v", names, want)
	}
}

// TestNilRegistry: a nil registry hands out nil metrics and all of them
// no-op, so optional instrumentation needs no branching.
func TestNilRegistry(t *testing.T) {
	var r *Registry
	c := r.Counter("mmdb_test_x_total", "")
	g := r.Gauge("mmdb_test_y_gauge", "")
	h := r.Histogram("mmdb_test_z_seconds", "", ScaleNanosToSeconds)
	r.CounterFunc("mmdb_test_f_total", "", func() uint64 { return 1 })
	r.GaugeFunc("mmdb_test_g_ratio", "", func() float64 { return 1 })
	c.Inc()
	g.Set(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil-registry metrics must no-op")
	}
	if r.Gather() != nil || r.Names() != nil || r.FindHistogram("mmdb_test_z_seconds") != nil {
		t.Fatal("nil registry must gather nothing")
	}
}
