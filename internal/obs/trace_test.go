package obs

import (
	"sync"
	"testing"
)

// TestTracerBasic: events come back in record order with payloads intact.
func TestTracerBasic(t *testing.T) {
	tr := NewTracer(64)
	tr.Record(EvTxnBegin, 1, 0, 0)
	tr.Record(EvTxnCommit, 1, 100, 2500)
	tr.Record(EvCkptBegin, 7, 1, 0)
	evs := tr.Dump()
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	if evs[0].Kind != EvTxnBegin || evs[0].A != 1 || evs[0].Seq != 0 {
		t.Fatalf("event 0 = %+v", evs[0])
	}
	if evs[1].Kind != EvTxnCommit || evs[1].B != 100 || evs[1].C != 2500 {
		t.Fatalf("event 1 = %+v", evs[1])
	}
	if evs[2].Kind != EvCkptBegin || evs[2].A != 7 || evs[2].Seq != 2 {
		t.Fatalf("event 2 = %+v", evs[2])
	}
	if evs[0].Nanos == 0 {
		t.Fatal("event timestamp not set")
	}
}

// TestTracerWraparound: after overfilling the ring, exactly the newest
// capacity events remain, still in order.
func TestTracerWraparound(t *testing.T) {
	const capacity = 16
	tr := NewTracer(capacity)
	const total = 3*capacity + 5
	for i := uint64(0); i < total; i++ {
		tr.Record(EvTxnCommit, i, 0, 0)
	}
	if tr.Len() != total {
		t.Fatalf("Len = %d, want %d", tr.Len(), total)
	}
	evs := tr.Dump()
	if len(evs) != capacity {
		t.Fatalf("got %d events after wrap, want %d", len(evs), capacity)
	}
	for i, ev := range evs {
		wantSeq := uint64(total - capacity + i)
		if ev.Seq != wantSeq || ev.A != wantSeq {
			t.Fatalf("event %d: seq=%d a=%d, want %d", i, ev.Seq, ev.A, wantSeq)
		}
	}
}

// TestTracerCapacityRounding: capacity rounds up to a power of two and
// zero selects the default.
func TestTracerCapacityRounding(t *testing.T) {
	if tr := NewTracer(100); len(tr.slots) != 128 {
		t.Fatalf("capacity 100 rounded to %d, want 128", len(tr.slots))
	}
	if tr := NewTracer(0); len(tr.slots) != DefaultTraceCap {
		t.Fatalf("capacity 0 gave %d, want %d", len(tr.slots), DefaultTraceCap)
	}
}

// TestTracerConcurrent: many writers wrapping the ring while a reader
// dumps; under -race this proves the atomic slot protocol. Every dumped
// event must be internally consistent (payload A equals its Seq).
func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(64)
	const workers, per = 8, 4000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				tr.Record(EvTxnCommit, 0, 0, 0)
			}
		}()
	}
	stop := make(chan struct{})
	go func() {
		defer close(stop)
		for i := 0; i < 200; i++ {
			evs := tr.Dump()
			for j := 1; j < len(evs); j++ {
				if evs[j].Seq <= evs[j-1].Seq {
					t.Errorf("dump not strictly ordered: %d after %d", evs[j].Seq, evs[j-1].Seq)
					return
				}
			}
		}
	}()
	wg.Wait()
	<-stop
	if got := tr.Len(); got != workers*per {
		t.Fatalf("Len = %d, want %d", got, workers*per)
	}
	evs := tr.Dump()
	if len(evs) == 0 || len(evs) > 64 {
		t.Fatalf("final dump has %d events", len(evs))
	}
}

// TestTracerSeqPayloadConsistency: single designated writer per slot
// value — a dumped event's payload must match its sequence number, i.e.
// no torn reads mixing two writers' events.
func TestTracerSeqPayloadConsistency(t *testing.T) {
	tr := NewTracer(32)
	var wg sync.WaitGroup
	done := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			seq := tr.head.Load()
			tr.Record(EvTxnCommit, seq, 0, 0) // A == its own ticket (single writer)
		}
	}()
	for i := 0; i < 500; i++ {
		for _, ev := range tr.Dump() {
			if ev.A != ev.Seq {
				close(done)
				wg.Wait()
				t.Fatalf("torn event: seq=%d payload=%d", ev.Seq, ev.A)
			}
		}
	}
	close(done)
	wg.Wait()
}

// TestTracerInterferenceEvents: the PR 8 algorithm events round-trip with
// their per-kind payload words intact.
func TestTracerInterferenceEvents(t *testing.T) {
	tr := NewTracer(16)
	tr.Record(EvZigzagFlip, 9, 3, 4096)
	tr.Record(EvHourglassStall, 9, 5, 120000)
	evs := tr.Dump()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	if evs[0].Kind != EvZigzagFlip || evs[0].A != 9 || evs[0].B != 3 || evs[0].C != 4096 {
		t.Fatalf("zigzag flip event = %+v", evs[0])
	}
	if evs[1].Kind != EvHourglassStall || evs[1].B != 5 || evs[1].C != 120000 {
		t.Fatalf("hourglass stall event = %+v", evs[1])
	}
}

// TestNilTracer: nil receivers are safe no-ops.
func TestNilTracer(t *testing.T) {
	var tr *Tracer
	tr.Record(EvTxnBegin, 1, 2, 3)
	if tr.Dump() != nil || tr.Len() != 0 {
		t.Fatal("nil tracer must record and dump nothing")
	}
}

// TestEventKindString: every defined kind has a wire name.
func TestEventKindString(t *testing.T) {
	kinds := []EventKind{EvTxnBegin, EvTxnCommit, EvTxnAbort, EvTxnRestart,
		EvCkptBegin, EvCkptSegment, EvCkptEnd, EvCompaction, EvRecoveryPhase,
		EvZigzagFlip, EvHourglassStall}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "unknown" || seen[s] {
			t.Fatalf("kind %d has bad or duplicate name %q", k, s)
		}
		seen[s] = true
	}
	if EventKind(200).String() != "unknown" {
		t.Fatal("undefined kind must stringify as unknown")
	}
}
