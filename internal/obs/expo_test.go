package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite exposition golden files")

// goldenFixture builds a deterministic registry + tracer for the
// exposition golden tests.
func goldenFixture() (*Registry, *Tracer) {
	r := NewRegistry()
	c := r.Counter("mmdb_test_txns_committed_total", "Committed transactions.")
	g := r.Gauge("mmdb_test_dirty_ratio", "Fraction of dirty segments.")
	h := r.Histogram("mmdb_test_commit_seconds", "Commit latency.", ScaleNanosToSeconds)
	b := r.Histogram("mmdb_test_flush_batch_bytes", "Flush batch size.", ScaleNone)
	c.Add(17)
	g.Set(0.25)
	for _, ns := range []uint64{1500, 1500, 23_000, 1_200_000} {
		h.Observe(ns)
	}
	b.Observe(4096)
	b.Observe(96)
	tr := NewTracer(16)
	tr.Record(EvTxnBegin, 1, 0, 0)
	tr.Record(EvTxnCommit, 1, 4096, 23_000)
	tr.Record(EvCkptBegin, 1, 0, 0)
	tr.Record(EvCkptSegment, 1, 3, 1500)
	tr.Record(EvCkptEnd, 1, 1, 90_000)
	return r, tr
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update-golden to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s mismatch (run with -update-golden to refresh):\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

// TestPrometheusGolden: stable Prometheus text output.
func TestPrometheusGolden(t *testing.T) {
	r, _ := goldenFixture()
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r.Gather()); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "metrics.prom", buf.Bytes())
}

// TestJSONGolden: stable JSON output. Event timestamps are zeroed so the
// document is deterministic.
func TestJSONGolden(t *testing.T) {
	r, tr := goldenFixture()
	events := tr.Dump()
	for i := range events {
		events[i].Nanos = 0
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, r.Gather(), events, nil, nil); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "metrics.json", buf.Bytes())
}

// TestPrometheusCumulative: histogram le buckets are cumulative and end
// at +Inf = count.
func TestPrometheusCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("mmdb_test_cum_bytes", "", ScaleNone)
	h.Observe(5)
	h.Observe(5)
	h.Observe(700)
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r.Gather()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`mmdb_test_cum_bytes_bucket{le="5"} 2`,
		`mmdb_test_cum_bytes_bucket{le="709"} 3`,
		`mmdb_test_cum_bytes_bucket{le="+Inf"} 3`,
		"mmdb_test_cum_bytes_sum 710",
		"mmdb_test_cum_bytes_count 3",
	} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

// TestHandler: format negotiation on the HTTP surface.
func TestHandler(t *testing.T) {
	r, tr := goldenFixture()
	h := Handler(r, tr, nil, nil)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 || !bytes.Contains(rec.Body.Bytes(), []byte("# TYPE mmdb_test_commit_seconds histogram")) {
		t.Fatalf("prom default: code=%d body=%s", rec.Code, rec.Body.String())
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics?format=json&events=1", nil))
	if rec.Code != 200 {
		t.Fatalf("json: code=%d", rec.Code)
	}
	var doc MetricsJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Counters["mmdb_test_txns_committed_total"] != 17 {
		t.Fatalf("json counters = %v", doc.Counters)
	}
	if hj := doc.Histograms["mmdb_test_commit_seconds"]; hj.Count != 4 || hj.P50 <= 0 {
		t.Fatalf("json histogram = %+v", hj)
	}
	if len(doc.Events) != 5 {
		t.Fatalf("json events = %d, want 5", len(doc.Events))
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics?format=xml", nil))
	if rec.Code != 400 {
		t.Fatalf("unknown format: code=%d, want 400", rec.Code)
	}
}

// TestHandlerSpansAndChrome: the span ring and watchdog dumps are served
// under JSON, and format=chrome emits loadable trace-event JSON.
func TestHandlerSpansAndChrome(t *testing.T) {
	r, tr := goldenFixture()
	st := NewSpanTracer(32, 1)
	root := st.BeginSampled(SpanCommit, 1, 0)
	child := st.Begin(SpanWALAppend, root, 1, 0)
	st.End(child)
	st.End(root)
	wd := NewWatchdog(st)
	wd.SetThresholds(1, 0) // 1ns: everything trips
	wd.Check(WatchCommit, root, 5_000)
	h := Handler(r, tr, st, wd)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics?format=json&spans=1&slow=1", nil))
	if rec.Code != 200 {
		t.Fatalf("json: code=%d", rec.Code)
	}
	var doc MetricsJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Spans) != 2 {
		t.Fatalf("json spans = %d, want 2", len(doc.Spans))
	}
	if doc.Spans[1].Parent != uint64(root) || doc.Spans[1].Kind != "wal_append" {
		t.Fatalf("child span JSON = %+v", doc.Spans[1])
	}
	if len(doc.SlowOps) != 1 || doc.SlowOps[0].Kind != "commit" || len(doc.SlowOps[0].Spans) != 2 {
		t.Fatalf("slow ops JSON = %+v", doc.SlowOps)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics?format=chrome", nil))
	if rec.Code != 200 {
		t.Fatalf("chrome: code=%d", rec.Code)
	}
	var chrome struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &chrome); err != nil {
		t.Fatal(err)
	}
	// 2 spans (X) + 5 lifecycle events (i) from the golden fixture.
	if len(chrome.TraceEvents) != 7 {
		t.Fatalf("chrome events = %d, want 7", len(chrome.TraceEvents))
	}
	var xs, is int
	for _, ev := range chrome.TraceEvents {
		switch ev["ph"] {
		case "X":
			xs++
		case "i":
			is++
		}
	}
	if xs != 2 || is != 5 {
		t.Fatalf("chrome phases: %d X + %d i, want 2 + 5", xs, is)
	}
}

// TestPrometheusHelpEscaping: backslashes and newlines in help text must
// be escaped so they cannot break the line-oriented text format.
func TestPrometheusHelpEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("mmdb_test_escape_total", "Line one.\nLine \\ two.").Add(1)
	r.Histogram("mmdb_test_escape_seconds", "Hist\nhelp.", ScaleNanosToSeconds).Observe(10)
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r.Gather()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`# HELP mmdb_test_escape_total Line one.\nLine \\ two.`,
		`# HELP mmdb_test_escape_seconds Hist\nhelp.`,
	} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// No raw (unescaped) newline may survive inside a HELP line: every
	// line starting with # HELP must be a complete comment line.
	for _, line := range bytes.Split(buf.Bytes(), []byte("\n")) {
		if bytes.HasPrefix(line, []byte("Line ")) || bytes.HasPrefix(line, []byte("help.")) {
			t.Fatalf("raw newline leaked into exposition: %q", line)
		}
	}
}
