package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram bucket layout: ~2 significant decimal digits over the full
// uint64 range. Values 0..9 get one exact bucket each; every higher
// decade d (values in [10^d, 10^(d+1))) gets 90 sub-buckets keyed by the
// leading two digits (10..99). A bucket's upper bound therefore exceeds
// its lower bound by at most one unit in the second significant digit,
// so any quantile read from bucket bounds is within ~1% of the true
// value (the "quantile error ≤ bucket width" property the tests assert).
const (
	// exactBuckets covers values 0..9 one-to-one.
	exactBuckets = 10
	// decades is the number of full decades above the exact range that a
	// uint64 can occupy: 10^1 .. 10^19 (1.8e19 < 2^64 < 10^20).
	decades = 19
	// bucketsPerDecade is one bucket per leading-two-digit value 10..99.
	bucketsPerDecade = 90
	// numBuckets is the total fixed bucket count (1720).
	numBuckets = exactBuckets + decades*bucketsPerDecade
)

// pow10 holds 10^0 .. 10^19.
var pow10 = [20]uint64{
	1, 10, 100, 1000, 10000, 100000, 1000000, 10000000,
	100000000, 1000000000, 10000000000, 100000000000,
	1000000000000, 10000000000000, 100000000000000,
	1000000000000000, 10000000000000000, 100000000000000000,
	1000000000000000000, 10000000000000000000,
}

// Histogram unit-scale factors (see Registry.Histogram).
const (
	// ScaleNone exposes recorded values unchanged (bytes, counts).
	ScaleNone = 1.0
	// ScaleNanosToSeconds exposes nanosecond recordings as seconds, the
	// Prometheus base unit for *_seconds histograms.
	ScaleNanosToSeconds = 1e-9
)

// bucketIndex maps a value to its bucket. Values 0..9 map to themselves;
// a larger value with decimal magnitude d (10^d ≤ v < 10^(d+1)) maps by
// its leading two digits v/10^(d-1) ∈ [10, 99].
func bucketIndex(v uint64) int {
	if v < exactBuckets {
		return int(v)
	}
	// Decimal digit count via the bit-length estimate: len*1233>>12
	// approximates log10(2^len) and is off by at most one, fixed up by a
	// single table compare.
	t := bits.Len64(v) * 1233 >> 12
	if t >= len(pow10) || v < pow10[t] {
		t--
	}
	d := t // v ∈ [10^d, 10^(d+1)), d ≥ 1
	return exactBuckets + (d-1)*bucketsPerDecade + int(v/pow10[d-1]) - 10
}

// bucketUpper returns the inclusive upper bound of bucket i in recorded
// units.
func bucketUpper(i int) uint64 {
	if i < exactBuckets {
		return uint64(i)
	}
	i -= exactBuckets
	d := i/bucketsPerDecade + 1
	lead := uint64(i%bucketsPerDecade) + 10
	// Upper bound of the sub-bucket: (lead+1)*10^(d-1) - 1, saturating at
	// the top of the uint64 range for the final buckets.
	hi, lo := bits.Mul64(lead+1, pow10[d-1])
	if hi != 0 {
		return ^uint64(0)
	}
	return lo - 1
}

// Histogram is a lock-free log-bucketed histogram of non-negative integer
// recordings (typically nanoseconds or bytes). All fields are atomics;
// Observe is wait-free and Snapshot is a consistent-enough racy read
// (counts may trail sums by in-flight observations, never by more).
type Histogram struct {
	name, help string
	// scale converts a recorded value to the exposed unit.
	scale   float64
	count   atomic.Uint64
	sum     atomic.Uint64
	max     atomic.Uint64
	buckets [numBuckets]atomic.Uint64
}

// Observe records v.
//
// perf:hotpath(every latency sample lands here; pure atomics, no allocation)
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketIndex(v)].Add(1)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// ObserveSince records the elapsed nanoseconds since start.
//
// perf:hotpath(latency sampling on commit and read paths)
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil {
		return
	}
	d := time.Since(start)
	if d < 0 {
		d = 0
	}
	h.Observe(uint64(d))
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the exact sum of recorded values in recorded units
// (unscaled).
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// MaxValue returns the largest recorded value in recorded units.
func (h *Histogram) MaxValue() uint64 {
	if h == nil {
		return 0
	}
	return h.max.Load()
}

// Name returns the registered metric name.
func (h *Histogram) Name() string { return h.name }

// Snapshot copies the histogram's current state. The copy is taken
// bucket-by-bucket without a lock, so concurrent observations may be
// partially included; totals remain self-consistent enough for quantile
// estimation (the error is bounded by the in-flight observation count).
func (h *Histogram) Snapshot() Snapshot {
	s := Snapshot{Scale: ScaleNone}
	if h == nil {
		return s
	}
	s.Scale = h.scale
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	s.Max = h.max.Load()
	s.Buckets = make([]uint64, numBuckets)
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// Snapshot is a point-in-time copy of a histogram, mergeable with other
// snapshots of same-unit histograms.
type Snapshot struct {
	// Count and Sum and Max are in recorded (unscaled) units.
	Count uint64
	Sum   uint64
	Max   uint64
	// Buckets has numBuckets entries (nil for an empty snapshot of a nil
	// histogram).
	Buckets []uint64
	// Scale converts recorded units to exposed units.
	Scale float64
}

// Merge adds other's observations into s. Both snapshots must use the
// same recorded unit.
func (s *Snapshot) Merge(other Snapshot) {
	s.Count += other.Count
	s.Sum += other.Sum
	if other.Max > s.Max {
		s.Max = other.Max
	}
	if other.Buckets == nil {
		return
	}
	if s.Buckets == nil {
		s.Buckets = make([]uint64, numBuckets)
	}
	for i, v := range other.Buckets {
		s.Buckets[i] += v
	}
}

// Mean returns the scaled mean of the recorded values, or 0 when empty.
func (s Snapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) * s.Scale / float64(s.Count)
}

// Quantile returns the scaled q-quantile (0 ≤ q ≤ 1) estimated from
// bucket upper bounds; q ≥ 1 returns the exact recorded max. The
// estimate errs high by at most one bucket width (~1% of the value).
func (s Snapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q >= 1 {
		return float64(s.Max) * s.Scale
	}
	if q < 0 {
		q = 0
	}
	// Rank of the target observation, 1-based, rounded up.
	rank := uint64(q*float64(s.Count) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var cum uint64
	for i, c := range s.Buckets {
		cum += c
		if cum >= rank {
			upper := bucketUpper(i)
			if upper > s.Max {
				upper = s.Max
			}
			return float64(upper) * s.Scale
		}
	}
	return float64(s.Max) * s.Scale
}
