package obs

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// TestBucketIndexExact: values 0..9 land in their own exact bucket and
// the bucket's bound is the value itself.
func TestBucketIndexExact(t *testing.T) {
	for v := uint64(0); v < 10; v++ {
		if got := bucketIndex(v); got != int(v) {
			t.Fatalf("bucketIndex(%d) = %d, want %d", v, got, v)
		}
		if got := bucketUpper(int(v)); got != v {
			t.Fatalf("bucketUpper(%d) = %d, want %d", v, got, v)
		}
	}
}

// TestBucketIndexBounds: every value lands in a bucket whose bounds
// contain it, across magnitudes including decade edges and MaxUint64.
func TestBucketIndexBounds(t *testing.T) {
	vals := []uint64{10, 11, 99, 100, 101, 999, 1000, 1234, 9999,
		1_000_000, 123_456_789, 1e18, math.MaxUint64}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		vals = append(vals, rng.Uint64()>>uint(rng.Intn(64)))
	}
	for _, v := range vals {
		i := bucketIndex(v)
		if i < 0 || i >= numBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range", v, i)
		}
		upper := bucketUpper(i)
		if v > upper {
			t.Fatalf("value %d above bucket %d upper bound %d", v, i, upper)
		}
		if i > 0 {
			lower := bucketUpper(i-1) + 1
			if v < lower {
				t.Fatalf("value %d below bucket %d lower bound %d", v, i, lower)
			}
		}
	}
}

// TestBucketWidth: relative bucket width stays within ~10% (one unit in
// the second significant digit), which bounds quantile error.
func TestBucketWidth(t *testing.T) {
	for i := exactBuckets; i < numBuckets; i++ {
		upper := bucketUpper(i)
		lower := bucketUpper(i-1) + 1
		if upper == math.MaxUint64 {
			continue
		}
		width := float64(upper-lower) + 1
		if rel := width / float64(lower); rel > 0.101 {
			t.Fatalf("bucket %d [%d,%d] relative width %.3f > 10%%", i, lower, upper, rel)
		}
	}
}

// TestQuantileError: for a random sample, each estimated quantile is ≥
// the true order statistic and within one bucket width above it.
func TestQuantileError(t *testing.T) {
	h := &Histogram{scale: ScaleNone}
	rng := rand.New(rand.NewSource(7))
	n := 20000
	vals := make([]uint64, n)
	for i := range vals {
		// Log-uniform spread across six decades, like latencies.
		vals[i] = uint64(math.Exp(rng.Float64()*13.8)) + 1
		h.Observe(vals[i])
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	s := h.Snapshot()
	for _, q := range []float64{0.5, 0.9, 0.99} {
		rank := int(q*float64(n)+0.5) - 1
		truth := float64(vals[rank])
		got := s.Quantile(q)
		if got < truth {
			t.Fatalf("q=%.2f estimate %.0f below true order statistic %.0f", q, got, truth)
		}
		if got > truth*1.11 {
			t.Fatalf("q=%.2f estimate %.0f exceeds true %.0f by more than a bucket width", q, got, truth)
		}
	}
	if got, want := s.Quantile(1), float64(vals[n-1]); got != want {
		t.Fatalf("q=1 = %.0f, want exact max %.0f", got, want)
	}
}

// TestQuantileEmptyAndSingle: degenerate snapshots.
func TestQuantileEmptyAndSingle(t *testing.T) {
	var empty Snapshot
	if got := empty.Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %v, want 0", got)
	}
	h := &Histogram{scale: ScaleNone}
	h.Observe(42)
	s := h.Snapshot()
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		got := s.Quantile(q)
		if got != 42 {
			t.Fatalf("single-value q=%v = %v, want 42", q, got)
		}
	}
}

// TestMerge: merging two snapshots equals snapshotting the combined
// observations.
func TestMerge(t *testing.T) {
	a := &Histogram{scale: ScaleNone}
	b := &Histogram{scale: ScaleNone}
	both := &Histogram{scale: ScaleNone}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		v := uint64(rng.Intn(1_000_000))
		if i%2 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
		both.Observe(v)
	}
	merged := a.Snapshot()
	merged.Merge(b.Snapshot())
	want := both.Snapshot()
	if merged.Count != want.Count || merged.Sum != want.Sum || merged.Max != want.Max {
		t.Fatalf("merged totals (%d,%d,%d) != combined (%d,%d,%d)",
			merged.Count, merged.Sum, merged.Max, want.Count, want.Sum, want.Max)
	}
	for i := range want.Buckets {
		if merged.Buckets[i] != want.Buckets[i] {
			t.Fatalf("bucket %d: merged %d != combined %d", i, merged.Buckets[i], want.Buckets[i])
		}
	}
}

// TestMergeIntoEmpty: merging into a zero-value snapshot adopts the
// other's buckets.
func TestMergeIntoEmpty(t *testing.T) {
	h := &Histogram{scale: ScaleNone}
	h.Observe(100)
	var s Snapshot
	s.Merge(h.Snapshot())
	if s.Count != 1 || s.Sum != 100 || s.Max != 100 {
		t.Fatalf("merge into empty: got count=%d sum=%d max=%d", s.Count, s.Sum, s.Max)
	}
	if s.Buckets == nil || s.Buckets[bucketIndex(100)] != 1 {
		t.Fatal("merge into empty did not adopt buckets")
	}
}

// TestHistogramScale: a nanosecond histogram exposes seconds.
func TestHistogramScale(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("mmdb_test_op_seconds", "", ScaleNanosToSeconds)
	h.Observe(uint64(1500 * time.Millisecond))
	s := h.Snapshot()
	if got := s.Mean(); math.Abs(got-1.5) > 1e-9 {
		t.Fatalf("mean = %v s, want 1.5", got)
	}
	if got := s.Quantile(1); math.Abs(got-1.5) > 1e-9 {
		t.Fatalf("max quantile = %v s, want 1.5", got)
	}
}

// TestHistogramConcurrent: concurrent observers under -race; totals add
// up exactly afterwards.
func TestHistogramConcurrent(t *testing.T) {
	h := &Histogram{scale: ScaleNone}
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				h.Observe(uint64(rng.Intn(10000)))
				if i%64 == 0 {
					_ = h.Snapshot() // concurrent reads must be race-clean
				}
			}
		}(int64(w))
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*per {
		t.Fatalf("count = %d, want %d", s.Count, workers*per)
	}
	var bucketTotal uint64
	for _, c := range s.Buckets {
		bucketTotal += c
	}
	if bucketTotal != s.Count {
		t.Fatalf("bucket total %d != count %d", bucketTotal, s.Count)
	}
}

// TestNilHistogram: nil receivers are safe no-ops.
func TestNilHistogram(t *testing.T) {
	var h *Histogram
	h.Observe(1)
	h.ObserveSince(time.Now())
	if h.Count() != 0 || h.Sum() != 0 || h.MaxValue() != 0 {
		t.Fatal("nil histogram accessors must return zero")
	}
	s := h.Snapshot()
	if s.Count != 0 || s.Buckets != nil {
		t.Fatal("nil histogram snapshot must be empty")
	}
}
