package obs

import (
	"math"
	"runtime"
	runtimemetrics "runtime/metrics"
	"sync"
	"sync/atomic"
	"time"
)

// runtimeRefresh bounds how often the harvester re-reads runtime/metrics:
// one Gather evaluates several harvester gauges, and a single sample
// serves them all.
const runtimeRefresh = 50 * time.Millisecond

// runtimeSampleNames are the runtime/metrics samples the harvester reads.
var runtimeSampleNames = []string{
	"/gc/pauses:seconds",
	"/sched/latencies:seconds",
	"/gc/cycles/total:gc-cycles",
}

// RuntimeHarvester exposes Go runtime health — GC pause and scheduler
// latency distributions plus GC cycle and goroutine counts — as obs
// gauges, so checkpoint interference can be told apart from runtime
// interference in the same scrape. Samples are read from runtime/metrics
// at most once per runtimeRefresh across all gauges.
type RuntimeHarvester struct {
	mu      sync.Mutex // lockorder:level=96
	lastRef time.Time  // guarded_by: mu
	samples []runtimemetrics.Sample

	// The harvested values are atomics (the mutex only serializes the
	// refresh itself), so gauge funcs read them lock-free.
	gcPauseP50   atomicFloat
	gcPauseP99   atomicFloat
	gcPauseMax   atomicFloat
	schedLatP50  atomicFloat
	schedLatP99  atomicFloat
	schedLatMax  atomicFloat
	gcCyclesSeen atomic.Uint64
}

// atomicFloat is a float64 with atomic load/store (math.Float64bits
// encoding), the same shape as the registry's Gauge.
type atomicFloat struct{ bits atomic.Uint64 }

func (a *atomicFloat) store(v float64) { a.bits.Store(math.Float64bits(v)) }
func (a *atomicFloat) load() float64   { return math.Float64frombits(a.bits.Load()) }

// NewRuntimeHarvester registers the runtime gauges on reg and returns
// the harvester backing them.
func NewRuntimeHarvester(reg *Registry) *RuntimeHarvester {
	h := &RuntimeHarvester{samples: make([]runtimemetrics.Sample, len(runtimeSampleNames))}
	for i, name := range runtimeSampleNames {
		h.samples[i].Name = name
	}
	reg.GaugeFunc("mmdb_runtime_gc_pause_p50_seconds", "Median GC stop-the-world pause.", h.gauge(&h.gcPauseP50))
	reg.GaugeFunc("mmdb_runtime_gc_pause_p99_seconds", "99th-percentile GC stop-the-world pause.", h.gauge(&h.gcPauseP99))
	reg.GaugeFunc("mmdb_runtime_gc_pause_max_seconds", "Largest observed GC stop-the-world pause bucket.", h.gauge(&h.gcPauseMax))
	reg.GaugeFunc("mmdb_runtime_sched_latency_p50_seconds", "Median goroutine scheduling latency.", h.gauge(&h.schedLatP50))
	reg.GaugeFunc("mmdb_runtime_sched_latency_p99_seconds", "99th-percentile goroutine scheduling latency.", h.gauge(&h.schedLatP99))
	reg.GaugeFunc("mmdb_runtime_sched_latency_max_seconds", "Largest observed goroutine scheduling latency bucket.", h.gauge(&h.schedLatMax))
	reg.CounterFunc("mmdb_runtime_gc_cycles_total", "Completed GC cycles.", func() uint64 {
		h.refresh()
		return h.gcCyclesSeen.Load()
	})
	reg.GaugeFunc("mmdb_runtime_goroutines", "Live goroutines.", func() float64 {
		return float64(runtime.NumGoroutine())
	})
	return h
}

// gauge returns a GaugeFunc reading one harvested field, refreshing the
// sample set first when it is stale.
func (h *RuntimeHarvester) gauge(field *atomicFloat) func() float64 {
	return func() float64 {
		h.refresh()
		return field.load()
	}
}

// refresh re-reads runtime/metrics if the cached sample set is older than
// runtimeRefresh.
func (h *RuntimeHarvester) refresh() {
	h.mu.Lock()
	defer h.mu.Unlock()
	now := time.Now()
	if now.Sub(h.lastRef) < runtimeRefresh && !h.lastRef.IsZero() {
		return
	}
	h.lastRef = now
	runtimemetrics.Read(h.samples)
	for _, s := range h.samples {
		switch s.Name {
		case "/gc/pauses:seconds":
			if s.Value.Kind() == runtimemetrics.KindFloat64Histogram {
				hist := s.Value.Float64Histogram()
				h.gcPauseP50.store(histQuantile(hist, 0.50))
				h.gcPauseP99.store(histQuantile(hist, 0.99))
				h.gcPauseMax.store(histQuantile(hist, 1.0))
			}
		case "/sched/latencies:seconds":
			if s.Value.Kind() == runtimemetrics.KindFloat64Histogram {
				hist := s.Value.Float64Histogram()
				h.schedLatP50.store(histQuantile(hist, 0.50))
				h.schedLatP99.store(histQuantile(hist, 0.99))
				h.schedLatMax.store(histQuantile(hist, 1.0))
			}
		case "/gc/cycles/total:gc-cycles":
			if s.Value.Kind() == runtimemetrics.KindUint64 {
				h.gcCyclesSeen.Store(s.Value.Uint64())
			}
		}
	}
}

// histQuantile reports the q-quantile of a runtime/metrics histogram as
// the upper bound of the bucket the quantile falls in (the last finite
// bound for the +Inf bucket). Returns 0 for an empty histogram.
func histQuantile(h *runtimemetrics.Float64Histogram, q float64) float64 {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum >= target {
			// Bucket i spans [Buckets[i], Buckets[i+1]); clamp infinities
			// to the nearest finite bound.
			upper := h.Buckets[i+1]
			if upper > maxFinite(h.Buckets) {
				upper = maxFinite(h.Buckets)
			}
			return upper
		}
	}
	return maxFinite(h.Buckets)
}

// maxFinite returns the largest finite bucket boundary, or 0.
func maxFinite(bounds []float64) float64 {
	for i := len(bounds) - 1; i >= 0; i-- {
		b := bounds[i]
		if b == b && b < 1e300 && b > -1e300 { // finite
			return b
		}
	}
	return 0
}
