package obs

import (
	"sync"
	"testing"
)

// TestSpanBasic: a parent/child tree comes back in begin order with
// payloads, parent links, and durations intact.
func TestSpanBasic(t *testing.T) {
	st := NewSpanTracer(64, 1)
	root := st.BeginSampled(SpanCommit, 7, 0)
	if root == SpanNone {
		t.Fatal("sampleEvery=1 must trace every root")
	}
	child := st.Begin(SpanWALAppend, root, 7, 0)
	st.End(child)
	grand := st.Begin(SpanGroupCommitFlush, root, 7, 42)
	st.End(grand)
	st.End(root)

	spans := st.Dump()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	if spans[0].Kind != SpanCommit || spans[0].Parent != SpanNone || spans[0].A != 7 {
		t.Fatalf("root span = %+v", spans[0])
	}
	if spans[0].ID() != root {
		t.Fatalf("root ID = %d, want %d", spans[0].ID(), root)
	}
	if spans[1].Kind != SpanWALAppend || spans[1].Parent != root {
		t.Fatalf("child span = %+v", spans[1])
	}
	if spans[2].Kind != SpanGroupCommitFlush || spans[2].Parent != root || spans[2].B != 42 {
		t.Fatalf("second child = %+v", spans[2])
	}
	for _, sp := range spans {
		if sp.Begin == 0 || sp.Dur < 0 {
			t.Fatalf("bad timestamps: %+v", sp)
		}
	}
	// Children nest within the root's interval.
	rootEnd := spans[0].Begin + spans[0].Dur
	for _, c := range spans[1:] {
		if c.Begin < spans[0].Begin || c.Begin+c.Dur > rootEnd {
			t.Fatalf("child %+v not nested in root [%d,%d]", c, spans[0].Begin, rootEnd)
		}
	}
}

// TestSpanSampling: with sampleEvery=4 exactly one in four roots is
// traced, and unsampled roots cost nothing in the ring.
func TestSpanSampling(t *testing.T) {
	st := NewSpanTracer(64, 4)
	traced := 0
	for i := 0; i < 16; i++ {
		if id := st.BeginSampled(SpanCommit, uint64(i), 0); id != SpanNone {
			traced++
			st.End(id)
		}
	}
	if traced != 4 {
		t.Fatalf("traced %d of 16 roots with sampleEvery=4, want 4", traced)
	}
	if got := len(st.Dump()); got != 4 {
		t.Fatalf("ring holds %d spans, want 4", got)
	}
}

// TestSpanInFlightSkipped: a span without an End is not dumped; ending it
// makes it appear.
func TestSpanInFlightSkipped(t *testing.T) {
	st := NewSpanTracer(16, 1)
	id := st.Begin(SpanCheckpoint, SpanNone, 1, 0)
	if got := len(st.Dump()); got != 0 {
		t.Fatalf("in-flight span dumped: %d spans", got)
	}
	st.End(id)
	if got := len(st.Dump()); got != 1 {
		t.Fatalf("ended span not dumped: %d spans", got)
	}
}

// TestSpanWraparoundDropsLateEnd: once the ring wraps past a span's slot,
// its End is dropped instead of corrupting the new occupant.
func TestSpanWraparoundDropsLateEnd(t *testing.T) {
	const capacity = 16
	st := NewSpanTracer(capacity, 1)
	old := st.Begin(SpanCommit, SpanNone, 999, 0)
	for i := 0; i < capacity; i++ { // wrap the ring past old's slot
		id := st.Begin(SpanWALAppend, SpanNone, uint64(i), 0)
		st.End(id)
	}
	st.End(old) // late End for a reclaimed slot
	for _, sp := range st.Dump() {
		if sp.A == 999 {
			t.Fatalf("overwritten span resurfaced: %+v", sp)
		}
	}
	if got := len(st.Dump()); got != capacity {
		t.Fatalf("got %d spans after wrap, want %d", got, capacity)
	}
}

// TestSpanConcurrent: many writers opening and closing span trees while a
// reader dumps; under -race this proves the atomic slot protocol. Dumped
// spans must be strictly ordered with consistent payloads.
func TestSpanConcurrent(t *testing.T) {
	st := NewSpanTracer(64, 1)
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				root := st.BeginSampled(SpanCommit, 1, 0)
				child := st.Begin(SpanWALAppend, root, 1, 0)
				st.End(child)
				st.End(root)
			}
		}()
	}
	stop := make(chan struct{})
	go func() {
		defer close(stop)
		for i := 0; i < 200; i++ {
			spans := st.Dump()
			for j := 1; j < len(spans); j++ {
				if spans[j].Seq <= spans[j-1].Seq {
					t.Errorf("dump not strictly ordered: %d after %d", spans[j].Seq, spans[j-1].Seq)
					return
				}
			}
		}
	}()
	wg.Wait()
	<-stop
	if got := st.Len(); got != workers*per*2 {
		t.Fatalf("Len = %d, want %d", got, workers*per*2)
	}
}

// TestNilSpanTracer: nil receivers are safe no-ops everywhere.
func TestNilSpanTracer(t *testing.T) {
	var st *SpanTracer
	if st.BeginSampled(SpanCommit, 1, 2) != SpanNone {
		t.Fatal("nil tracer must not sample")
	}
	if st.Begin(SpanCommit, SpanNone, 1, 2) != SpanNone {
		t.Fatal("nil tracer must not begin")
	}
	st.End(SpanNone)
	st.End(SpanID(5))
	if st.Dump() != nil || st.Len() != 0 {
		t.Fatal("nil tracer must record and dump nothing")
	}
}

// TestSpanKindString: every defined kind has a unique wire name.
func TestSpanKindString(t *testing.T) {
	kinds := []SpanKind{SpanCommit, SpanLockWait, SpanWALAppend,
		SpanGroupCommitFlush, SpanCOUCopy, SpanZigzagFlip, SpanHourglassStall,
		SpanTwoColorRestart, SpanCheckpoint, SpanCkptQuiesce, SpanCkptSegment,
		SpanLSNWait, SpanRecovery, SpanRecBackupLoad, SpanRecLogScan,
		SpanRecRedoApply}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "unknown" || seen[s] {
			t.Fatalf("kind %d has bad or duplicate name %q", k, s)
		}
		seen[s] = true
	}
	if SpanKind(200).String() != "unknown" {
		t.Fatal("undefined kind must stringify as unknown")
	}
}

// TestSpanCapacityRounding: capacity rounds up to a power of two and zero
// selects the default.
func TestSpanCapacityRounding(t *testing.T) {
	if st := NewSpanTracer(100, 1); len(st.slots) != 128 {
		t.Fatalf("capacity 100 rounded to %d, want 128", len(st.slots))
	}
	if st := NewSpanTracer(0, 0); len(st.slots) != DefaultSpanCap {
		t.Fatalf("capacity 0 gave %d, want %d", len(st.slots), DefaultSpanCap)
	}
}
