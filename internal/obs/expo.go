package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// escapeHelp escapes HELP text per the Prometheus text exposition format
// (version 0.0.4): backslash and newline must be escaped so multi-line
// help cannot break the line-oriented format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return s
}

// WritePrometheus writes every gathered metric in the Prometheus text
// exposition format (version 0.0.4). Histograms emit cumulative le
// buckets (non-empty ones plus +Inf), _sum in the exposed unit, and
// _count.
func WritePrometheus(w io.Writer, pts []Point) error {
	for _, p := range pts {
		switch p.Kind {
		case KindCounter, KindGauge:
			typ := "counter"
			if p.Kind == KindGauge {
				typ = "gauge"
			}
			if p.Help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", p.Name, escapeHelp(p.Help)); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n%s %s\n",
				p.Name, typ, p.Name, formatFloat(p.Value)); err != nil {
				return err
			}
		case KindHistogram:
			if err := writePromHistogram(w, p); err != nil {
				return err
			}
		}
	}
	return nil
}

func writePromHistogram(w io.Writer, p Point) error {
	if p.Help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", p.Name, escapeHelp(p.Help)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", p.Name); err != nil {
		return err
	}
	s := p.Hist
	var cum uint64
	for i, c := range s.Buckets {
		if c == 0 {
			continue
		}
		cum += c
		le := float64(bucketUpper(i)) * s.Scale
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n",
			p.Name, formatFloat(le), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", p.Name, s.Count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n",
		p.Name, formatFloat(float64(s.Sum)*s.Scale), p.Name, s.Count); err != nil {
		return err
	}
	return nil
}

// formatFloat renders a value the shortest way that round-trips, with
// integral values printed without an exponent.
func formatFloat(v float64) string {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// HistogramJSON is the JSON shape of one histogram.
type HistogramJSON struct {
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

// SnapshotJSON summarizes a histogram snapshot for JSON exposition.
func SnapshotJSON(s Snapshot) HistogramJSON {
	return HistogramJSON{
		Count: s.Count,
		Sum:   float64(s.Sum) * s.Scale,
		Max:   float64(s.Max) * s.Scale,
		Mean:  s.Mean(),
		P50:   s.Quantile(0.50),
		P90:   s.Quantile(0.90),
		P99:   s.Quantile(0.99),
	}
}

// EventJSON is the JSON shape of one trace event.
type EventJSON struct {
	Seq   uint64 `json:"seq"`
	Nanos int64  `json:"nanos"`
	Kind  string `json:"kind"`
	A     uint64 `json:"a"`
	B     uint64 `json:"b"`
	C     uint64 `json:"c"`
}

// SpanJSON is the JSON shape of one attribution span.
type SpanJSON struct {
	Seq    uint64 `json:"seq"`
	Parent uint64 `json:"parent"`
	Kind   string `json:"kind"`
	Begin  int64  `json:"begin"`
	Dur    int64  `json:"dur"`
	A      uint64 `json:"a"`
	B      uint64 `json:"b"`
}

// SlowOpJSON is the JSON shape of one watchdog slow-op dump.
type SlowOpJSON struct {
	Kind  string     `json:"kind"`
	Nanos int64      `json:"nanos"`
	Dur   int64      `json:"dur"`
	Root  uint64     `json:"root"`
	Spans []SpanJSON `json:"spans"`
}

// spansJSON converts a span dump to its JSON shape.
func spansJSON(spans []Span) []SpanJSON {
	out := make([]SpanJSON, 0, len(spans))
	for _, s := range spans {
		out = append(out, SpanJSON{
			Seq: s.Seq, Parent: uint64(s.Parent), Kind: s.Kind.String(),
			Begin: s.Begin, Dur: s.Dur, A: s.A, B: s.B,
		})
	}
	return out
}

// MetricsJSON is the top-level JSON exposition document.
type MetricsJSON struct {
	Counters   map[string]float64       `json:"counters"`
	Gauges     map[string]float64       `json:"gauges"`
	Histograms map[string]HistogramJSON `json:"histograms"`
	Events     []EventJSON              `json:"events,omitempty"`
	Spans      []SpanJSON               `json:"spans,omitempty"`
	SlowOps    []SlowOpJSON             `json:"slow_ops,omitempty"`
}

// BuildJSON assembles the JSON exposition document from gathered points
// and (optionally) dumped trace events, spans, and slow-op dumps.
func BuildJSON(pts []Point, events []Event, spans []Span, slow []SlowOp) MetricsJSON {
	doc := MetricsJSON{
		Counters:   make(map[string]float64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]HistogramJSON),
	}
	for _, p := range pts {
		switch p.Kind {
		case KindCounter:
			doc.Counters[p.Name] = p.Value
		case KindGauge:
			doc.Gauges[p.Name] = p.Value
		case KindHistogram:
			doc.Histograms[p.Name] = SnapshotJSON(*p.Hist)
		}
	}
	for _, e := range events {
		doc.Events = append(doc.Events, EventJSON{
			Seq: e.Seq, Nanos: e.Nanos, Kind: e.Kind.String(), A: e.A, B: e.B, C: e.C,
		})
	}
	if len(spans) > 0 {
		doc.Spans = spansJSON(spans)
	}
	for _, op := range slow {
		doc.SlowOps = append(doc.SlowOps, SlowOpJSON{
			Kind: op.Kind.String(), Nanos: op.Nanos, Dur: op.Dur,
			Root: uint64(op.Root), Spans: spansJSON(op.Spans),
		})
	}
	return doc
}

// WriteJSON writes the JSON exposition document (indented, sorted keys —
// encoding/json sorts map keys).
func WriteJSON(w io.Writer, pts []Point, events []Event, spans []Span, slow []SlowOp) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(BuildJSON(pts, events, spans, slow))
}

// Handler serves the registry (and the flight recorder: the tracer's
// events with ?events=1, the span ring with ?spans=1, and watchdog
// slow-op dumps with ?slow=1, all under JSON) over HTTP. ?format=prom
// (default) selects Prometheus text; ?format=json selects JSON;
// ?format=chrome serves the flight-recorder contents as Chrome
// trace-event JSON for chrome://tracing or Perfetto. The spans tracer
// and watchdog may be nil.
func Handler(reg *Registry, tracer *Tracer, spans *SpanTracer, wd *Watchdog) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		pts := reg.Gather()
		format := r.URL.Query().Get("format")
		if format == "" {
			// Content negotiation fallback: JSON if requested via Accept.
			if strings.Contains(r.Header.Get("Accept"), "application/json") {
				format = "json"
			} else {
				format = "prom"
			}
		}
		switch format {
		case "json":
			var events []Event
			if r.URL.Query().Get("events") == "1" {
				events = tracer.Dump()
			}
			var sps []Span
			if r.URL.Query().Get("spans") == "1" {
				sps = spans.Dump()
			}
			var slow []SlowOp
			if r.URL.Query().Get("slow") == "1" {
				slow = wd.SlowOps()
			}
			w.Header().Set("Content-Type", "application/json")
			if err := WriteJSON(w, pts, events, sps, slow); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		case "chrome":
			w.Header().Set("Content-Type", "application/json")
			if err := WriteChromeTrace(w, spans.Dump(), tracer.Dump()); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		case "prom":
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			if err := WritePrometheus(w, pts); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		default:
			http.Error(w, "unknown format "+format+" (want prom, json, or chrome)", http.StatusBadRequest)
		}
	})
}
