package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// WritePrometheus writes every gathered metric in the Prometheus text
// exposition format (version 0.0.4). Histograms emit cumulative le
// buckets (non-empty ones plus +Inf), _sum in the exposed unit, and
// _count.
func WritePrometheus(w io.Writer, pts []Point) error {
	for _, p := range pts {
		switch p.Kind {
		case KindCounter, KindGauge:
			typ := "counter"
			if p.Kind == KindGauge {
				typ = "gauge"
			}
			if p.Help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", p.Name, p.Help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n%s %s\n",
				p.Name, typ, p.Name, formatFloat(p.Value)); err != nil {
				return err
			}
		case KindHistogram:
			if err := writePromHistogram(w, p); err != nil {
				return err
			}
		}
	}
	return nil
}

func writePromHistogram(w io.Writer, p Point) error {
	if p.Help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", p.Name, p.Help); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", p.Name); err != nil {
		return err
	}
	s := p.Hist
	var cum uint64
	for i, c := range s.Buckets {
		if c == 0 {
			continue
		}
		cum += c
		le := float64(bucketUpper(i)) * s.Scale
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n",
			p.Name, formatFloat(le), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", p.Name, s.Count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n",
		p.Name, formatFloat(float64(s.Sum)*s.Scale), p.Name, s.Count); err != nil {
		return err
	}
	return nil
}

// formatFloat renders a value the shortest way that round-trips, with
// integral values printed without an exponent.
func formatFloat(v float64) string {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// HistogramJSON is the JSON shape of one histogram.
type HistogramJSON struct {
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

// SnapshotJSON summarizes a histogram snapshot for JSON exposition.
func SnapshotJSON(s Snapshot) HistogramJSON {
	return HistogramJSON{
		Count: s.Count,
		Sum:   float64(s.Sum) * s.Scale,
		Max:   float64(s.Max) * s.Scale,
		Mean:  s.Mean(),
		P50:   s.Quantile(0.50),
		P90:   s.Quantile(0.90),
		P99:   s.Quantile(0.99),
	}
}

// EventJSON is the JSON shape of one trace event.
type EventJSON struct {
	Seq   uint64 `json:"seq"`
	Nanos int64  `json:"nanos"`
	Kind  string `json:"kind"`
	A     uint64 `json:"a"`
	B     uint64 `json:"b"`
	C     uint64 `json:"c"`
}

// MetricsJSON is the top-level JSON exposition document.
type MetricsJSON struct {
	Counters   map[string]float64       `json:"counters"`
	Gauges     map[string]float64       `json:"gauges"`
	Histograms map[string]HistogramJSON `json:"histograms"`
	Events     []EventJSON              `json:"events,omitempty"`
}

// BuildJSON assembles the JSON exposition document from gathered points
// and (optionally) dumped trace events.
func BuildJSON(pts []Point, events []Event) MetricsJSON {
	doc := MetricsJSON{
		Counters:   make(map[string]float64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]HistogramJSON),
	}
	for _, p := range pts {
		switch p.Kind {
		case KindCounter:
			doc.Counters[p.Name] = p.Value
		case KindGauge:
			doc.Gauges[p.Name] = p.Value
		case KindHistogram:
			doc.Histograms[p.Name] = SnapshotJSON(*p.Hist)
		}
	}
	for _, e := range events {
		doc.Events = append(doc.Events, EventJSON{
			Seq: e.Seq, Nanos: e.Nanos, Kind: e.Kind.String(), A: e.A, B: e.B, C: e.C,
		})
	}
	return doc
}

// WriteJSON writes the JSON exposition document (indented, sorted keys —
// encoding/json sorts map keys).
func WriteJSON(w io.Writer, pts []Point, events []Event) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(BuildJSON(pts, events))
}

// Handler serves the registry (and the tracer's events, when JSON is
// requested with ?events=1) over HTTP. ?format=prom (default) selects
// Prometheus text; ?format=json selects JSON.
func Handler(reg *Registry, tracer *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		pts := reg.Gather()
		format := r.URL.Query().Get("format")
		if format == "" {
			// Content negotiation fallback: JSON if requested via Accept.
			if strings.Contains(r.Header.Get("Accept"), "application/json") {
				format = "json"
			} else {
				format = "prom"
			}
		}
		switch format {
		case "json":
			var events []Event
			if r.URL.Query().Get("events") == "1" {
				events = tracer.Dump()
			}
			w.Header().Set("Content-Type", "application/json")
			if err := WriteJSON(w, pts, events); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		case "prom":
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			if err := WritePrometheus(w, pts); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		default:
			http.Error(w, "unknown format "+format+" (want prom or json)", http.StatusBadRequest)
		}
	})
}
