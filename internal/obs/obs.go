// Package obs is the engine's observability core: a metrics registry of
// atomic counters, gauges, and lock-free log-bucketed latency histograms,
// plus a bounded lock-free lifecycle-event tracer (trace.go) and two
// exposition surfaces, Prometheus text format and JSON (expo.go).
//
// The package is dependency-free (standard library only) and safe to
// leave enabled on the hot path: recording a counter is one atomic add,
// recording a histogram value is three atomic adds plus a bucket
// increment, and recording a trace event is a handful of atomic stores
// into a ring buffer. Every Observe/Record/Add method is nil-receiver
// safe, so subsystems can hold optional metric handles without branching.
//
// Metric names follow the convention mmdb_<subsystem>_<name>[_unit]
// (e.g. mmdb_wal_flush_seconds, mmdb_engine_txns_committed_total); the
// registry enforces the shape at registration time, and a guard test
// asserts the unit suffixes.
package obs

import (
	"math"
	"regexp"
	"sort"
	"sync"
	"sync/atomic"
)

// nameRe is the registered-name shape: mmdb_<subsystem>_<name>[_unit],
// lowercase tokens of [a-z0-9] separated by underscores, at least three
// tokens including the mmdb prefix.
var nameRe = regexp.MustCompile(`^mmdb(_[a-z0-9]+){2,}$`)

// ValidName reports whether name matches the mmdb_<subsystem>_<name>
// naming convention.
func ValidName(name string) bool { return nameRe.MatchString(name) }

// Counter is a monotonically increasing counter.
type Counter struct {
	name, help string
	v          atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Name returns the registered metric name.
func (c *Counter) Name() string { return c.name }

// Gauge is a float-valued instantaneous measurement.
type Gauge struct {
	name, help string
	bits       atomic.Uint64 // math.Float64bits of the value
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Name returns the registered metric name.
func (g *Gauge) Name() string { return g.name }

// funcMetric is a counter or gauge whose value is read on demand, used to
// expose pre-existing atomic counters without double-counting writes. The
// function is evaluated outside the registry lock, so it may take its
// subsystem's locks freely.
type funcMetric struct {
	name, help string
	counter    bool
	fn         func() float64
}

// MetricKind tags one exposition point.
type MetricKind int

// Metric kinds.
const (
	KindCounter MetricKind = iota
	KindGauge
	KindHistogram
)

// Point is one gathered metric: a counter or gauge value, or a histogram
// snapshot.
type Point struct {
	Name string
	Help string
	Kind MetricKind
	// Value is the counter or gauge value (unused for histograms).
	Value float64
	// Hist is the histogram snapshot (nil for counters and gauges).
	Hist *Snapshot
}

// Registry holds a set of uniquely named metrics. The zero value is not
// usable; call NewRegistry. All methods are safe for concurrent use; a
// nil *Registry ignores registrations and gathers nothing, so optional
// instrumentation needs no branching.
type Registry struct {
	mu sync.Mutex // lockorder:level=95
	// names is the duplicate-registration guard. guarded_by:mu
	names map[string]bool
	// counters, gauges, hists, and funcs are the registered metrics.
	// guarded_by:mu
	counters []*Counter
	// guarded_by:mu
	gauges []*Gauge
	// guarded_by:mu
	hists []*Histogram
	// guarded_by:mu
	funcs []funcMetric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]bool)}
}

// register validates and reserves a metric name. It panics on a malformed
// or duplicate name: both are programming errors caught the first time
// the owning subsystem starts.
// lockcheck:held r.mu
func (r *Registry) register(name string) {
	if !ValidName(name) {
		panic("obs: metric name " + name + " does not match mmdb_<subsystem>_<name>[_unit]")
	}
	if r.names[name] {
		panic("obs: duplicate metric name " + name)
	}
	r.names[name] = true
}

// Counter registers and returns a new counter. A nil registry returns a
// nil (no-op) counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.register(name)
	c := &Counter{name: name, help: help}
	r.counters = append(r.counters, c)
	return c
}

// Gauge registers and returns a new gauge. A nil registry returns a nil
// (no-op) gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.register(name)
	g := &Gauge{name: name, help: help}
	r.gauges = append(r.gauges, g)
	return g
}

// Histogram registers and returns a new histogram recording non-negative
// integer values (e.g. nanoseconds, bytes); scale converts a recorded
// value to the exposed unit (ScaleNanosToSeconds for histograms named
// *_seconds that record nanoseconds, ScaleNone for byte or count
// histograms). A nil registry returns a nil (no-op) histogram.
func (r *Registry) Histogram(name, help string, scale float64) *Histogram {
	if r == nil {
		return nil
	}
	if scale <= 0 {
		panic("obs: histogram " + name + " scale must be positive")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.register(name)
	h := &Histogram{name: name, help: help, scale: scale}
	r.hists = append(r.hists, h)
	return h
}

// CounterFunc registers a counter whose value is fn(), read at gather
// time (outside the registry lock). Use it to expose an existing atomic
// counter without double-counting writes.
func (r *Registry) CounterFunc(name, help string, fn func() uint64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.register(name)
	r.funcs = append(r.funcs, funcMetric{name: name, help: help, counter: true,
		fn: func() float64 { return float64(fn()) }})
}

// GaugeFunc registers a gauge whose value is fn(), read at gather time
// (outside the registry lock).
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.register(name)
	r.funcs = append(r.funcs, funcMetric{name: name, help: help, fn: fn})
}

// FindHistogram returns the registered histogram named name, or nil.
func (r *Registry) FindHistogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, h := range r.hists {
		if h.name == name {
			return h
		}
	}
	return nil
}

// Names returns every registered metric name, sorted.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.names))
	for n := range r.names {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Gather snapshots every metric, sorted by name. Value functions are
// evaluated after the registry lock is released, so they may take
// subsystem locks (the registry lock is a leaf: nothing else is ever
// acquired while it is held).
func (r *Registry) Gather() []Point {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	counters := append([]*Counter(nil), r.counters...)
	gauges := append([]*Gauge(nil), r.gauges...)
	hists := append([]*Histogram(nil), r.hists...)
	funcs := append([]funcMetric(nil), r.funcs...)
	r.mu.Unlock()

	pts := make([]Point, 0, len(counters)+len(gauges)+len(hists)+len(funcs))
	for _, c := range counters {
		pts = append(pts, Point{Name: c.name, Help: c.help, Kind: KindCounter, Value: float64(c.Value())})
	}
	for _, g := range gauges {
		pts = append(pts, Point{Name: g.name, Help: g.help, Kind: KindGauge, Value: g.Value()})
	}
	for _, h := range hists {
		snap := h.Snapshot()
		pts = append(pts, Point{Name: h.name, Help: h.help, Kind: KindHistogram, Hist: &snap})
	}
	for _, f := range funcs {
		kind := KindGauge
		if f.counter {
			kind = KindCounter
		}
		pts = append(pts, Point{Name: f.name, Help: f.help, Kind: kind, Value: f.fn()})
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].Name < pts[j].Name })
	return pts
}
