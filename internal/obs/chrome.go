package obs

import (
	"encoding/json"
	"io"
)

// chromeEvent is one entry in the Chrome trace-event JSON format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU):
// "X" complete events carry ts+dur, "i" instant events just ts.
// Timestamps are microseconds.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur,omitempty"`
	Pid  int               `json:"pid"`
	Tid  uint64            `json:"tid"`
	S    string            `json:"s,omitempty"`
	Args map[string]uint64 `json:"args,omitempty"`
}

// chromeTrace is the top-level trace-event JSON object form.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace writes the flight-recorder contents — completed spans
// and lifecycle events — as Chrome trace-event JSON, loadable in
// chrome://tracing or Perfetto. Each span tree is laid out on its own
// track (tid = the tree root's span ID) so parent/child spans nest by
// time containment; lifecycle events become global instants on track 0.
func WriteChromeTrace(w io.Writer, spans []Span, events []Event) error {
	// Resolve each span's tree root for track assignment. Parent links
	// always point at earlier tickets, so one pass over the dump (which is
	// in begin order) resolves every chain.
	root := make(map[SpanID]SpanID, len(spans))
	for _, s := range spans {
		id := s.ID()
		if s.Parent == SpanNone {
			root[id] = id
		} else if r, ok := root[s.Parent]; ok {
			root[id] = r
		} else {
			// Parent fell off the ring: treat this span as its own root.
			root[id] = id
		}
	}
	doc := chromeTrace{
		TraceEvents:     make([]chromeEvent, 0, len(spans)+len(events)),
		DisplayTimeUnit: "ns",
	}
	for _, s := range spans {
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: s.Kind.String(),
			Cat:  "mmdb",
			Ph:   "X",
			Ts:   float64(s.Begin) / 1e3,
			Dur:  float64(s.Dur) / 1e3,
			Pid:  1,
			Tid:  uint64(root[s.ID()]),
			Args: map[string]uint64{
				"span":   uint64(s.ID()),
				"parent": uint64(s.Parent),
				"a":      s.A,
				"b":      s.B,
			},
		})
	}
	for _, e := range events {
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: e.Kind.String(),
			Cat:  "mmdb",
			Ph:   "i",
			Ts:   float64(e.Nanos) / 1e3,
			Pid:  1,
			S:    "g",
			Args: map[string]uint64{"a": e.A, "b": e.B, "c": e.C},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}
