package obs

import (
	"runtime"
	runtimemetrics "runtime/metrics"
	"strings"
	"testing"
)

// TestRuntimeHarvester: the harvester registers the runtime gauges and
// gathers sane values after forcing a GC cycle.
func TestRuntimeHarvester(t *testing.T) {
	r := NewRegistry()
	NewRuntimeHarvester(r)
	runtime.GC() // guarantee at least one cycle and one pause sample

	want := map[string]bool{
		"mmdb_runtime_gc_pause_p50_seconds":      false,
		"mmdb_runtime_gc_pause_p99_seconds":      false,
		"mmdb_runtime_gc_pause_max_seconds":      false,
		"mmdb_runtime_sched_latency_p50_seconds": false,
		"mmdb_runtime_sched_latency_p99_seconds": false,
		"mmdb_runtime_sched_latency_max_seconds": false,
		"mmdb_runtime_gc_cycles_total":           false,
		"mmdb_runtime_goroutines":                false,
	}
	for _, p := range r.Gather() {
		if _, ok := want[p.Name]; !ok {
			continue
		}
		want[p.Name] = true
		if p.Value < 0 {
			t.Errorf("%s = %v, want ≥ 0", p.Name, p.Value)
		}
		switch p.Name {
		case "mmdb_runtime_goroutines":
			if p.Value < 1 {
				t.Errorf("goroutines = %v, want ≥ 1", p.Value)
			}
		case "mmdb_runtime_gc_cycles_total":
			if p.Value < 1 {
				t.Errorf("gc cycles = %v, want ≥ 1 after runtime.GC", p.Value)
			}
		}
		if strings.HasSuffix(p.Name, "_seconds") && p.Value > 3600 {
			t.Errorf("%s = %v, implausibly large", p.Name, p.Value)
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("gauge %s not gathered", name)
		}
	}
}

// TestHistQuantile: quantiles walk the runtime histogram's cumulative
// counts and clamp infinite bounds to the last finite one.
func TestHistQuantile(t *testing.T) {
	h := &runtimemetrics.Float64Histogram{
		Counts:  []uint64{5, 4, 1},
		Buckets: []float64{0, 1, 2, 3},
	}
	if q := histQuantile(h, 0.50); q != 1 {
		t.Fatalf("p50 = %v, want 1", q)
	}
	if q := histQuantile(h, 0.99); q != 3 {
		t.Fatalf("p99 = %v, want 3", q)
	}
	empty := &runtimemetrics.Float64Histogram{Counts: []uint64{0}, Buckets: []float64{0, 1}}
	if q := histQuantile(empty, 0.5); q != 0 {
		t.Fatalf("empty p50 = %v, want 0", q)
	}
}
