package obs

import (
	"testing"
	"time"
)

// buildTree begins and ends a commit tree plus one unrelated root,
// returning the commit root's ID.
func buildTree(st *SpanTracer) SpanID {
	other := st.Begin(SpanCheckpoint, SpanNone, 99, 0)
	st.End(other)
	root := st.Begin(SpanCommit, SpanNone, 7, 0)
	child := st.Begin(SpanWALAppend, root, 7, 0)
	grand := st.Begin(SpanGroupCommitFlush, root, 7, 0)
	st.End(child)
	st.End(grand)
	st.End(root)
	return root
}

// TestWatchdogTrip: a threshold-exceeded commit captures exactly the
// offending span tree; under-threshold operations do not trip.
func TestWatchdogTrip(t *testing.T) {
	st := NewSpanTracer(64, 1)
	root := buildTree(st)
	wd := NewWatchdog(st)
	wd.SetThresholds(time.Millisecond, time.Second)

	wd.Check(WatchCommit, root, int64(time.Millisecond)-1)
	if wd.Trips() != 0 {
		t.Fatal("under-threshold commit tripped the watchdog")
	}
	wd.Check(WatchCommit, root, int64(2*time.Millisecond))
	if wd.Trips() != 1 {
		t.Fatalf("trips = %d, want 1", wd.Trips())
	}
	ops := wd.SlowOps()
	if len(ops) != 1 {
		t.Fatalf("slow ops = %d, want 1", len(ops))
	}
	op := ops[0]
	if op.Kind != WatchCommit || op.Root != root || op.Dur != int64(2*time.Millisecond) {
		t.Fatalf("slow op = %+v", op)
	}
	// The dump holds the commit tree (3 spans), not the unrelated root.
	if len(op.Spans) != 3 {
		t.Fatalf("dump holds %d spans, want 3", len(op.Spans))
	}
	for _, sp := range op.Spans {
		if sp.Kind == SpanCheckpoint {
			t.Fatalf("unrelated span leaked into the tree dump: %+v", sp)
		}
	}
}

// TestWatchdogDisabled: zero thresholds never trip, and unsampled roots
// (SpanNone) dump the full retained ring.
func TestWatchdogDisabled(t *testing.T) {
	st := NewSpanTracer(64, 1)
	buildTree(st)
	wd := NewWatchdog(st)
	wd.Check(WatchCommit, SpanNone, int64(time.Hour))
	if wd.Trips() != 0 {
		t.Fatal("disabled watchdog tripped")
	}
	wd.SetThresholds(1, 1)
	wd.Check(WatchCheckpoint, SpanNone, int64(time.Hour))
	ops := wd.SlowOps()
	if len(ops) != 1 || ops[0].Kind != WatchCheckpoint {
		t.Fatalf("slow ops = %+v", ops)
	}
	if len(ops[0].Spans) != 4 { // unfiltered: whole retained ring
		t.Fatalf("unsampled dump holds %d spans, want 4", len(ops[0].Spans))
	}
}

// TestWatchdogRingWraps: more trips than watchdogKeep retain only the
// newest dumps, and a nil watchdog is a safe no-op.
func TestWatchdogRingWraps(t *testing.T) {
	st := NewSpanTracer(16, 1)
	wd := NewWatchdog(st)
	wd.SetThresholds(1, 0)
	for i := 0; i < watchdogKeep+3; i++ {
		wd.Check(WatchCommit, SpanNone, int64(time.Second)+int64(i))
	}
	if wd.Trips() != watchdogKeep+3 {
		t.Fatalf("trips = %d", wd.Trips())
	}
	if got := len(wd.SlowOps()); got != watchdogKeep {
		t.Fatalf("retained %d dumps, want %d", got, watchdogKeep)
	}

	var nilWd *Watchdog
	nilWd.SetThresholds(1, 1)
	nilWd.Check(WatchCommit, SpanNone, int64(time.Hour))
	if nilWd.Trips() != 0 || nilWd.SlowOps() != nil {
		t.Fatal("nil watchdog must be inert")
	}
}

// TestSpanTree: the filter keeps exactly the root's descendants and
// terminates on parents that fell off the ring.
func TestSpanTree(t *testing.T) {
	st := NewSpanTracer(64, 1)
	root := buildTree(st)
	spans := st.Dump()
	tree := SpanTree(spans, root)
	if len(tree) != 3 {
		t.Fatalf("tree size %d, want 3", len(tree))
	}
	if SpanTree(spans, SpanNone) != nil {
		t.Fatal("SpanNone must yield no tree")
	}
	// An orphan (parent never dumped) is not attributed to the root.
	orphanTree := SpanTree([]Span{{Seq: 50, Parent: SpanID(41), Kind: SpanWALAppend}}, root)
	if len(orphanTree) != 0 {
		t.Fatalf("orphan attributed: %+v", orphanTree)
	}
}
