package obs

import (
	"sort"
	"sync/atomic"
	"time"
)

// SpanKind identifies a span in the latency-attribution tree. The A/B
// payload words of a Span are per-kind:
//
//	SpanCommit           A=txnID
//	SpanLockWait         A=txnID B=recordID
//	SpanWALAppend        A=txnID
//	SpanGroupCommitFlush A=txnID B=commitEndLSN
//	SpanCOUCopy          A=txnID B=segmentIndex
//	SpanZigzagFlip       A=txnID B=segmentIndex
//	SpanHourglassStall   A=txnID B=segmentIndex
//	SpanTwoColorRestart  A=txnID B=ckptID
//	SpanCheckpoint       A=ckptID B=algorithm
//	SpanCkptQuiesce      A=ckptID
//	SpanCkptSegment      A=ckptID B=segmentIndex
//	SpanLSNWait          A=ckptID B=lsn
//	SpanRecovery         A=0
//	SpanRecBackupLoad    A=segments loaded
//	SpanRecLogScan       A=records scanned
//	SpanRecRedoApply     A=records applied
type SpanKind uint8

const (
	spanInvalid SpanKind = iota
	SpanCommit
	SpanLockWait
	SpanWALAppend
	SpanGroupCommitFlush
	SpanCOUCopy
	SpanZigzagFlip
	SpanHourglassStall
	SpanTwoColorRestart
	SpanCheckpoint
	SpanCkptQuiesce
	SpanCkptSegment
	SpanLSNWait
	SpanRecovery
	SpanRecBackupLoad
	SpanRecLogScan
	SpanRecRedoApply
)

// String returns the span kind's wire name.
func (k SpanKind) String() string {
	switch k {
	case SpanCommit:
		return "commit"
	case SpanLockWait:
		return "lock_wait"
	case SpanWALAppend:
		return "wal_append"
	case SpanGroupCommitFlush:
		return "group_commit_flush"
	case SpanCOUCopy:
		return "cou_copy"
	case SpanZigzagFlip:
		return "zigzag_flip"
	case SpanHourglassStall:
		return "hourglass_stall"
	case SpanTwoColorRestart:
		return "two_color_restart"
	case SpanCheckpoint:
		return "checkpoint"
	case SpanCkptQuiesce:
		return "ckpt_quiesce"
	case SpanCkptSegment:
		return "ckpt_segment"
	case SpanLSNWait:
		return "lsn_wait"
	case SpanRecovery:
		return "recovery"
	case SpanRecBackupLoad:
		return "rec_backup_load"
	case SpanRecLogScan:
		return "rec_log_scan"
	case SpanRecRedoApply:
		return "rec_redo_apply"
	default:
		return "unknown"
	}
}

// SpanID names a live or retained span: the span's ring ticket plus one,
// so the zero value (SpanNone) is never a valid span. Begin returns it,
// End closes it, and child spans carry it as their Parent.
type SpanID uint64

// SpanNone is the absent span: Begin with parent SpanNone starts a root,
// End(SpanNone) is a no-op, and a Span with Parent == SpanNone is a tree
// root. BeginSampled returns SpanNone for the commits it elects not to
// trace, which makes every child Begin/End under that commit free.
const SpanNone SpanID = 0

// Span is one dumped span record.
type Span struct {
	// Seq is the global begin order (dense, starts at 0).
	Seq uint64
	// Parent is the SpanID of the enclosing span, or SpanNone for roots.
	Parent SpanID
	Kind   SpanKind
	// Begin is the wall-clock begin time (UnixNano); Dur the span
	// duration in nanoseconds.
	Begin int64
	Dur   int64
	// A, B are per-kind payload words; see the SpanKind docs.
	A, B uint64
}

// ID returns the span's own SpanID (the value Begin returned for it).
func (s Span) ID() SpanID { return SpanID(s.Seq + 1) }

// spanSlot is one ring-buffer entry, following the traceSlot protocol:
// Begin claims the slot by storing ticket+1 into claim and writes the
// payload; End stores the duration and then ticket+1 into done. A reader
// accepts the slot only when claim == done != 0, so in-flight spans and
// slots being overwritten are skipped, never torn. Every field is
// atomic — no locks anywhere on the record path.
type spanSlot struct {
	claim  atomic.Uint64
	parent atomic.Uint64
	kind   atomic.Uint64
	begin  atomic.Int64
	dur    atomic.Int64
	a      atomic.Uint64
	b      atomic.Uint64
	done   atomic.Uint64
}

// SpanTracer is a bounded lock-free multi-producer ring buffer of spans —
// the flight recorder for latency attribution. Begin/End are wait-free
// (one ticket fetch-add, one clock read, and a handful of atomic stores
// each); when the ring wraps, the oldest spans are overwritten and a late
// End for an overwritten span is dropped. A nil *SpanTracer drops all
// spans, so span calls are free to leave in place unconditionally.
type SpanTracer struct {
	mask        uint64
	sampleEvery uint64
	head        atomic.Uint64
	tick        atomic.Uint64
	slots       []spanSlot
}

// DefaultSpanCap is the default span-ring capacity.
const DefaultSpanCap = 4096

// NewSpanTracer returns a span tracer retaining the most recent capacity
// spans (rounded up to a power of two; capacity ≤ 0 selects
// DefaultSpanCap). sampleEvery controls BeginSampled: one in every
// sampleEvery root spans is traced (≤ 1 traces every root).
func NewSpanTracer(capacity, sampleEvery int) *SpanTracer {
	if capacity <= 0 {
		capacity = DefaultSpanCap
	}
	n := 1
	for n < capacity {
		n <<= 1
	}
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	return &SpanTracer{
		mask:        uint64(n - 1),
		sampleEvery: uint64(sampleEvery),
		slots:       make([]spanSlot, n),
	}
}

// BeginSampled starts a root span subject to the tracer's sampling rate
// and returns its ID, or SpanNone when this root is not sampled. Callers
// gate every child Begin on the root being != SpanNone, so an unsampled
// commit costs exactly one fetch-add and no clock reads.
//
// perf:hotpath(the commit root span is opened inside transaction begin)
func (t *SpanTracer) BeginSampled(kind SpanKind, a, b uint64) SpanID {
	if t == nil {
		return SpanNone
	}
	if t.sampleEvery > 1 && t.tick.Add(1)%t.sampleEvery != 0 {
		return SpanNone
	}
	return t.Begin(kind, SpanNone, a, b)
}

// Begin starts a span and returns its ID. Unsampled — used for child
// spans (parent from an already-sampled root) and for rare roots such as
// checkpoints and recovery that must never be dropped. Safe for any
// number of concurrent writers.
//
// perf:hotpath(child spans open inside commit and checkpoint critical sections)
func (t *SpanTracer) Begin(kind SpanKind, parent SpanID, a, b uint64) SpanID {
	if t == nil {
		return SpanNone
	}
	ticket := t.head.Add(1) - 1
	s := &t.slots[ticket&t.mask]
	s.claim.Store(ticket + 1)
	s.parent.Store(uint64(parent))
	s.kind.Store(uint64(kind))
	s.begin.Store(time.Now().UnixNano())
	s.a.Store(a)
	s.b.Store(b)
	// done is left at its previous generation: the span is in-flight and
	// Dump skips it until End publishes the matching stamp.
	return SpanID(ticket + 1)
}

// End closes a span begun earlier. If the ring has wrapped and the slot
// was reclaimed by a newer span, the End is dropped — the flight recorder
// keeps only recent history. End(SpanNone) is a no-op.
//
// perf:hotpath(span ends fire inside commit and checkpoint critical sections)
func (t *SpanTracer) End(id SpanID) {
	if t == nil || id == SpanNone {
		return
	}
	ticket := uint64(id) - 1
	s := &t.slots[ticket&t.mask]
	if s.claim.Load() != uint64(id) {
		return
	}
	s.dur.Store(time.Now().UnixNano() - s.begin.Load())
	s.done.Store(uint64(id))
}

// Len returns the number of spans begun so far (including any already
// overwritten).
func (t *SpanTracer) Len() uint64 {
	if t == nil {
		return 0
	}
	return t.head.Load()
}

// Dump returns the currently retained completed spans in begin order.
// In-flight spans (no End yet) and slots being rewritten concurrently are
// skipped (claim ≠ done), so a dump taken during heavy writing is
// best-effort but never torn.
//
// alloc:allowed(diagnostic snapshot; called from exposition and the watchdog trip, never on the steady-state commit path)
func (t *SpanTracer) Dump() []Span {
	if t == nil {
		return nil
	}
	spans := make([]Span, 0, len(t.slots))
	for i := range t.slots {
		s := &t.slots[i]
		done := s.done.Load()
		if done == 0 || s.claim.Load() != done {
			continue
		}
		sp := Span{
			Seq:    done - 1,
			Parent: SpanID(s.parent.Load()),
			Kind:   SpanKind(s.kind.Load()),
			Begin:  s.begin.Load(),
			Dur:    s.dur.Load(),
			A:      s.a.Load(),
			B:      s.b.Load(),
		}
		// Re-check both generation stamps after reading the payload: if a
		// writer touched the slot mid-read, at least one differs.
		if s.claim.Load() != done || s.done.Load() != done {
			continue
		}
		spans = append(spans, sp)
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].Seq < spans[j].Seq })
	return spans
}
