package obs

import (
	"sort"
	"sync/atomic"
	"time"
)

// EventKind identifies a lifecycle event. The A/B/C payload words of an
// Event are per-kind:
//
//	EvTxnBegin      A=txnID
//	EvTxnCommit     A=txnID B=commitEndLSN C=durationNanos
//	EvTxnAbort      A=txnID
//	EvTxnRestart    A=txnID B=ckptID (aborted by the two-color rule)
//	EvCkptBegin     A=ckptID B=copyIndex
//	EvCkptSegment   A=ckptID B=segmentIndex C=flushNanos
//	EvCkptEnd       A=ckptID B=segmentsFlushed C=durationNanos
//	EvCompaction    A=bytesDropped
//	EvRecoveryPhase A=phase (RecPhase*) B=durationNanos
//	EvZigzagFlip    A=txnID B=segmentIndex C=bytesCopied
//	EvHourglassStall A=txnID B=segmentIndex C=waitNanos
type EventKind uint8

const (
	evInvalid EventKind = iota
	EvTxnBegin
	EvTxnCommit
	EvTxnAbort
	EvTxnRestart
	EvCkptBegin
	EvCkptSegment
	EvCkptEnd
	EvCompaction
	EvRecoveryPhase
	EvZigzagFlip
	EvHourglassStall
)

// Recovery phase identifiers carried in EvRecoveryPhase's A word.
const (
	RecPhaseBackupLoad uint64 = 1
	RecPhaseLogScan    uint64 = 2
	RecPhaseRedoApply  uint64 = 3
)

// String returns the event kind's wire name.
func (k EventKind) String() string {
	switch k {
	case EvTxnBegin:
		return "txn_begin"
	case EvTxnCommit:
		return "txn_commit"
	case EvTxnAbort:
		return "txn_abort"
	case EvTxnRestart:
		return "txn_restart"
	case EvCkptBegin:
		return "ckpt_begin"
	case EvCkptSegment:
		return "ckpt_segment"
	case EvCkptEnd:
		return "ckpt_end"
	case EvCompaction:
		return "compaction"
	case EvRecoveryPhase:
		return "recovery_phase"
	case EvZigzagFlip:
		return "zigzag_flip"
	case EvHourglassStall:
		return "hourglass_stall"
	default:
		return "unknown"
	}
}

// Event is one dumped lifecycle event.
type Event struct {
	// Seq is the global record order (dense, starts at 0).
	Seq uint64
	// Nanos is the wall-clock time (UnixNano) the event was recorded.
	Nanos int64
	Kind  EventKind
	// A, B, C are per-kind payload words; see the EventKind docs.
	A, B, C uint64
}

// traceSlot is one ring-buffer entry. Writers claim a slot by storing
// ticket+1 into claim, write the payload words, then store ticket+1 into
// done; a reader accepts the slot only when claim == done != 0, which
// means some writer's payload is fully visible (a concurrent overwrite
// can at worst make the reader skip the slot). Every field is atomic, so
// the protocol is race-detector clean without locks.
type traceSlot struct {
	claim atomic.Uint64
	nanos atomic.Int64
	kind  atomic.Uint64
	a     atomic.Uint64
	b     atomic.Uint64
	c     atomic.Uint64
	done  atomic.Uint64
}

// Tracer is a bounded lock-free multi-producer ring buffer of lifecycle
// events. Record is wait-free (one ticket fetch-add plus six atomic
// stores); when the ring wraps, the oldest events are overwritten. A nil
// *Tracer drops all events, so tracing is free to leave enabled
// unconditionally.
type Tracer struct {
	mask  uint64
	head  atomic.Uint64
	slots []traceSlot
}

// DefaultTraceCap is the default ring capacity.
const DefaultTraceCap = 4096

// NewTracer returns a tracer holding the most recent capacity events
// (rounded up to a power of two; capacity ≤ 0 selects DefaultTraceCap).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &Tracer{mask: uint64(n - 1), slots: make([]traceSlot, n)}
}

// Record appends one event. Safe for any number of concurrent writers.
//
// perf:hotpath(lifecycle events fire inside commit and checkpoint critical sections)
func (t *Tracer) Record(kind EventKind, a, b, c uint64) {
	if t == nil {
		return
	}
	ticket := t.head.Add(1) - 1
	s := &t.slots[ticket&t.mask]
	s.claim.Store(ticket + 1)
	s.nanos.Store(time.Now().UnixNano())
	s.kind.Store(uint64(kind))
	s.a.Store(a)
	s.b.Store(b)
	s.c.Store(c)
	s.done.Store(ticket + 1)
}

// Len returns the number of events recorded so far (including any already
// overwritten).
func (t *Tracer) Len() uint64 {
	if t == nil {
		return 0
	}
	return t.head.Load()
}

// Dump returns the currently retained events in record order. Slots being
// overwritten concurrently are skipped (claim ≠ done), so a dump taken
// during heavy writing is best-effort but never torn.
func (t *Tracer) Dump() []Event {
	if t == nil {
		return nil
	}
	evs := make([]Event, 0, len(t.slots))
	for i := range t.slots {
		s := &t.slots[i]
		done := s.done.Load()
		if done == 0 {
			continue
		}
		ev := Event{
			Seq:   done - 1,
			Nanos: s.nanos.Load(),
			Kind:  EventKind(s.kind.Load()),
			A:     s.a.Load(),
			B:     s.b.Load(),
			C:     s.c.Load(),
		}
		// Re-check both generation stamps after reading the payload: if a
		// writer touched the slot mid-read, at least one differs.
		if s.claim.Load() != done || s.done.Load() != done {
			continue
		}
		evs = append(evs, ev)
	}
	sort.Slice(evs, func(i, j int) bool { return evs[i].Seq < evs[j].Seq })
	return evs
}
