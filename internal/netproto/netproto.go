// Package netproto is the mmdbd wire protocol: length-prefixed binary
// frames over a byte stream, designed for pipelining.
//
// Frame layout (all integers little-endian):
//
//	u32 length   — bytes after this field: 1 (type) + 8 (reqID) + payload
//	u8  type     — TGet..TStats requests, TValue..TErrResp responses
//	u64 reqID    — client-chosen correlation ID; the server echoes it,
//	               and may complete requests out of order
//	payload      — per-type encoding below
//
// Request payloads:
//
//	TGet, TDelete:  u16 keyLen | key
//	TPut:           u16 keyLen | key | value (rest of payload)
//	TBatch:         u32 numOps | ops; each op:
//	                u8 flags (1 = delete) | u16 keyLen | u32 valLen | key | value
//	TStats:         empty
//
// Response payloads:
//
//	TValueResp:     u8 found | value (rest; only when found=1)
//	TOKResp:        u8 existed (Delete) or empty (Put/Batch)
//	TStatsResp:     JSON-encoded kvstore.StoreStats
//	TErrResp:       u8 code | message; code maps well-known sentinels
//	                (kvstore.ErrFull, ErrEmptyKey, mmdb.ErrCommitInDoubt,
//	                context.Canceled, ...) back to their identities
//	                client-side, so errors.Is works across the wire
//
// A frame longer than MaxFrame is rejected before any allocation, so a
// hostile or corrupt length prefix cannot balloon memory. Decoders
// never panic on garbage: every length is bounds-checked against the
// bytes actually present.
package netproto

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"mmdb"
	"mmdb/kvstore"
)

// Frame types. Requests have the high bit clear, responses set.
const (
	TGet    = 0x01
	TPut    = 0x02
	TDelete = 0x03
	TBatch  = 0x04
	TStats  = 0x05

	TValueResp = 0x81
	TOKResp    = 0x82
	TStatsResp = 0x83
	TErrResp   = 0x84
)

// MaxFrame bounds one frame's post-length bytes (type + reqID +
// payload). It is deliberately generous next to the engine's record
// sizes; a frame claiming more is a protocol error, detected before
// any buffer is sized by it.
const MaxFrame = 16 << 20

// frameHdr is the fixed prefix after the length field.
const frameHdr = 1 + 8

// Protocol-level errors.
var (
	ErrFrameTooLarge = errors.New("netproto: frame exceeds MaxFrame")
	ErrShortFrame    = errors.New("netproto: frame shorter than its header")
	ErrBadPayload    = errors.New("netproto: malformed payload")
)

// Frame is one decoded frame. Payload aliases the read buffer passed to
// ReadFrame and is only valid until the next read.
type Frame struct {
	Type  byte
	ReqID uint64
	Pay   []byte
}

// AppendFrame appends a complete frame to dst and returns the extended
// slice — the writer-side primitive, allocation-free when dst has room.
func AppendFrame(dst []byte, typ byte, reqID uint64, pay []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(frameHdr+len(pay)))
	dst = append(dst, typ)
	dst = binary.LittleEndian.AppendUint64(dst, reqID)
	return append(dst, pay...)
}

// WriteFrame writes one frame to w.
func WriteFrame(w io.Writer, typ byte, reqID uint64, pay []byte) error {
	if frameHdr+len(pay) > MaxFrame {
		return ErrFrameTooLarge
	}
	buf := AppendFrame(make([]byte, 0, 4+frameHdr+len(pay)), typ, reqID, pay)
	_, err := w.Write(buf)
	return err
}

// ReadFrame reads one frame from r. The returned payload aliases buf
// (grown as needed and returned) — callers reuse buf across calls and
// copy out anything they retain.
func ReadFrame(r io.Reader, buf []byte) (Frame, []byte, error) {
	var lenb [4]byte
	if _, err := io.ReadFull(r, lenb[:]); err != nil {
		return Frame{}, buf, err
	}
	n := binary.LittleEndian.Uint32(lenb[:])
	if n > MaxFrame {
		return Frame{}, buf, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	if n < frameHdr {
		return Frame{}, buf, fmt.Errorf("%w: %d bytes", ErrShortFrame, n)
	}
	if int(n) > cap(buf) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		// A clean EOF mid-frame is a torn frame, not a clean end.
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Frame{}, buf, err
	}
	return Frame{
		Type:  buf[0],
		ReqID: binary.LittleEndian.Uint64(buf[1:9]),
		Pay:   buf[frameHdr:],
	}, buf, nil
}

// --- request payload codecs ---

// AppendKey encodes a TGet/TDelete payload.
func AppendKey(dst, key []byte) []byte {
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(key)))
	return append(dst, key...)
}

// DecodeKey decodes a TGet/TDelete payload.
func DecodeKey(pay []byte) ([]byte, error) {
	if len(pay) < 2 {
		return nil, ErrBadPayload
	}
	kl := int(binary.LittleEndian.Uint16(pay))
	if 2+kl != len(pay) {
		return nil, ErrBadPayload
	}
	return pay[2 : 2+kl], nil
}

// AppendPut encodes a TPut payload.
func AppendPut(dst, key, val []byte) []byte {
	dst = AppendKey(dst, key)
	return append(dst, val...)
}

// DecodePut decodes a TPut payload.
func DecodePut(pay []byte) (key, val []byte, err error) {
	if len(pay) < 2 {
		return nil, nil, ErrBadPayload
	}
	kl := int(binary.LittleEndian.Uint16(pay))
	if 2+kl > len(pay) {
		return nil, nil, ErrBadPayload
	}
	return pay[2 : 2+kl], pay[2+kl:], nil
}

// AppendBatch encodes a TBatch payload.
func AppendBatch(dst []byte, ops []kvstore.Op) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(ops)))
	for _, op := range ops {
		var flags byte
		if op.Delete {
			flags = 1
		}
		dst = append(dst, flags)
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(op.Key)))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(op.Val)))
		dst = append(dst, op.Key...)
		dst = append(dst, op.Val...)
	}
	return dst
}

// DecodeBatch decodes a TBatch payload. The ops' slices alias pay.
func DecodeBatch(pay []byte) ([]kvstore.Op, error) {
	if len(pay) < 4 {
		return nil, ErrBadPayload
	}
	n := int(binary.LittleEndian.Uint32(pay))
	pay = pay[4:]
	// Each op needs at least its 7 fixed bytes; a count claiming more
	// than the payload could hold is rejected before allocating.
	if n < 0 || n > len(pay)/7 {
		return nil, ErrBadPayload
	}
	ops := make([]kvstore.Op, 0, n)
	for i := 0; i < n; i++ {
		if len(pay) < 7 {
			return nil, ErrBadPayload
		}
		flags := pay[0]
		kl := int(binary.LittleEndian.Uint16(pay[1:]))
		vl := int(binary.LittleEndian.Uint32(pay[3:]))
		pay = pay[7:]
		if kl+vl > len(pay) || flags > 1 {
			return nil, ErrBadPayload
		}
		op := kvstore.Op{Key: pay[:kl], Delete: flags == 1}
		if !op.Delete {
			op.Val = pay[kl : kl+vl]
		}
		pay = pay[kl+vl:]
		ops = append(ops, op)
	}
	if len(pay) != 0 {
		return nil, ErrBadPayload
	}
	return ops, nil
}

// --- response payload codecs ---

// AppendValueResp encodes a TValueResp payload.
func AppendValueResp(dst []byte, found bool, val []byte) []byte {
	if !found {
		return append(dst, 0)
	}
	dst = append(dst, 1)
	return append(dst, val...)
}

// DecodeValueResp decodes a TValueResp payload.
func DecodeValueResp(pay []byte) (val []byte, found bool, err error) {
	if len(pay) < 1 || pay[0] > 1 {
		return nil, false, ErrBadPayload
	}
	if pay[0] == 0 {
		if len(pay) != 1 {
			return nil, false, ErrBadPayload
		}
		return nil, false, nil
	}
	return pay[1:], true, nil
}

// AppendOKResp encodes a TOKResp payload for Delete (existed flag);
// Put/Batch send an empty TOKResp.
func AppendOKResp(dst []byte, existed bool) []byte {
	if existed {
		return append(dst, 1)
	}
	return append(dst, 0)
}

// DecodeOKResp decodes a TOKResp payload's optional existed flag.
func DecodeOKResp(pay []byte) (existed bool, err error) {
	switch {
	case len(pay) == 0:
		return false, nil
	case len(pay) == 1 && pay[0] <= 1:
		return pay[0] == 1, nil
	default:
		return false, ErrBadPayload
	}
}

// --- error transport ---

// Wire error codes: stable numbers for the sentinels a Store client
// must be able to errors.Is against.
const (
	codeGeneric = iota
	codeFull
	codeKeyTooLarge
	codeValueTooLarge
	codeEmptyKey
	codeCanceled
	codeDeadlineExceeded
	codeCommitInDoubt
	codeStopped
)

// AppendErrResp encodes a TErrResp payload.
func AppendErrResp(dst []byte, err error) []byte {
	var code byte
	switch {
	case errors.Is(err, kvstore.ErrFull):
		code = codeFull
	case errors.Is(err, kvstore.ErrKeyTooLarge):
		code = codeKeyTooLarge
	case errors.Is(err, kvstore.ErrValueTooLarge):
		code = codeValueTooLarge
	case errors.Is(err, kvstore.ErrEmptyKey):
		code = codeEmptyKey
	case errors.Is(err, context.Canceled):
		code = codeCanceled
	case errors.Is(err, context.DeadlineExceeded):
		code = codeDeadlineExceeded
	case errors.Is(err, mmdb.ErrCommitInDoubt):
		code = codeCommitInDoubt
	case errors.Is(err, mmdb.ErrStopped):
		code = codeStopped
	}
	dst = append(dst, code)
	return append(dst, err.Error()...)
}

// DecodeErrResp decodes a TErrResp payload into an error that wraps the
// matching sentinel, so errors.Is holds across the wire.
func DecodeErrResp(pay []byte) error {
	if len(pay) < 1 {
		return ErrBadPayload
	}
	msg := string(pay[1:])
	var sentinel error
	switch pay[0] {
	case codeFull:
		sentinel = kvstore.ErrFull
	case codeKeyTooLarge:
		sentinel = kvstore.ErrKeyTooLarge
	case codeValueTooLarge:
		sentinel = kvstore.ErrValueTooLarge
	case codeEmptyKey:
		sentinel = kvstore.ErrEmptyKey
	case codeCanceled:
		sentinel = context.Canceled
	case codeDeadlineExceeded:
		sentinel = context.DeadlineExceeded
	case codeCommitInDoubt:
		sentinel = mmdb.ErrCommitInDoubt
	case codeStopped:
		sentinel = mmdb.ErrStopped
	default:
		return fmt.Errorf("mmdbd: %s", msg)
	}
	return fmt.Errorf("mmdbd: %w (%s)", sentinel, msg)
}
