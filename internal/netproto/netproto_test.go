package netproto

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"mmdb"
	"mmdb/kvstore"
)

func TestFrameRoundTrip(t *testing.T) {
	var wire bytes.Buffer
	frames := []struct {
		typ   byte
		reqID uint64
		pay   []byte
	}{
		{TGet, 1, AppendKey(nil, []byte("key"))},
		{TPut, 1 << 60, AppendPut(nil, []byte("k"), bytes.Repeat([]byte("v"), 4096))},
		{TStats, 0, nil},
		{TOKResp, 7, AppendOKResp(nil, true)},
	}
	for _, f := range frames {
		if err := WriteFrame(&wire, f.typ, f.reqID, f.pay); err != nil {
			t.Fatalf("WriteFrame: %v", err)
		}
	}
	var buf []byte
	for i, want := range frames {
		var got Frame
		var err error
		got, buf, err = ReadFrame(&wire, buf)
		if err != nil {
			t.Fatalf("ReadFrame #%d: %v", i, err)
		}
		if got.Type != want.typ || got.ReqID != want.reqID || !bytes.Equal(got.Pay, want.pay) {
			t.Fatalf("frame #%d = %+v, want type %d reqID %d", i, got, want.typ, want.reqID)
		}
	}
	if _, _, err := ReadFrame(&wire, buf); err != io.EOF {
		t.Fatalf("trailing ReadFrame err = %v, want io.EOF", err)
	}
}

func TestReadFrameRejectsOversized(t *testing.T) {
	var wire bytes.Buffer
	var lenb [4]byte
	binary.LittleEndian.PutUint32(lenb[:], MaxFrame+1)
	wire.Write(lenb[:])
	wire.Write(bytes.Repeat([]byte("x"), 64))
	if _, _, err := ReadFrame(&wire, nil); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized frame err = %v, want ErrFrameTooLarge", err)
	}
}

func TestReadFrameRejectsShort(t *testing.T) {
	var wire bytes.Buffer
	var lenb [4]byte
	binary.LittleEndian.PutUint32(lenb[:], 3) // < type+reqID
	wire.Write(lenb[:])
	wire.Write([]byte("abc"))
	if _, _, err := ReadFrame(&wire, nil); !errors.Is(err, ErrShortFrame) {
		t.Fatalf("short frame err = %v, want ErrShortFrame", err)
	}
}

func TestReadFrameTornFrame(t *testing.T) {
	// A frame that promises more bytes than the stream holds: the read
	// must report a torn frame, not a clean EOF.
	var wire bytes.Buffer
	var lenb [4]byte
	binary.LittleEndian.PutUint32(lenb[:], 100)
	wire.Write(lenb[:])
	wire.Write(bytes.Repeat([]byte("x"), 20))
	if _, _, err := ReadFrame(&wire, nil); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("torn frame err = %v, want io.ErrUnexpectedEOF", err)
	}
}

func TestBatchRoundTrip(t *testing.T) {
	ops := []kvstore.Op{
		{Key: []byte("a"), Val: []byte("1")},
		{Key: []byte("delete-me"), Delete: true},
		{Key: []byte("b"), Val: nil},
		{Key: bytes.Repeat([]byte("k"), 1000), Val: bytes.Repeat([]byte("v"), 10000)},
	}
	got, err := DecodeBatch(AppendBatch(nil, ops))
	if err != nil {
		t.Fatalf("DecodeBatch: %v", err)
	}
	if len(got) != len(ops) {
		t.Fatalf("decoded %d ops, want %d", len(got), len(ops))
	}
	for i := range ops {
		if !bytes.Equal(got[i].Key, ops[i].Key) || !bytes.Equal(got[i].Val, ops[i].Val) || got[i].Delete != ops[i].Delete {
			t.Errorf("op %d = %+v, want %+v", i, got[i], ops[i])
		}
	}
}

func TestDecodeBatchHostileCount(t *testing.T) {
	// An op count far beyond what the payload could hold must be
	// rejected up front, not drive a huge allocation.
	pay := binary.LittleEndian.AppendUint32(nil, 1<<31-1)
	pay = append(pay, bytes.Repeat([]byte("x"), 32)...)
	if _, err := DecodeBatch(pay); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("hostile count err = %v, want ErrBadPayload", err)
	}
}

func TestErrRespRoundTrip(t *testing.T) {
	for _, sentinel := range []error{
		kvstore.ErrFull,
		kvstore.ErrKeyTooLarge,
		kvstore.ErrValueTooLarge,
		kvstore.ErrEmptyKey,
		context.Canceled,
		context.DeadlineExceeded,
		mmdb.ErrCommitInDoubt,
		mmdb.ErrStopped,
	} {
		wrapped := DecodeErrResp(AppendErrResp(nil, sentinel))
		if !errors.Is(wrapped, sentinel) {
			t.Errorf("sentinel %v lost across the wire: %v", sentinel, wrapped)
		}
	}
	plain := DecodeErrResp(AppendErrResp(nil, errors.New("boom")))
	if plain == nil || plain.Error() != "mmdbd: boom" {
		t.Errorf("generic error = %v, want mmdbd: boom", plain)
	}
}

func TestValueRespRoundTrip(t *testing.T) {
	if v, found, err := DecodeValueResp(AppendValueResp(nil, true, []byte("x"))); err != nil || !found || string(v) != "x" {
		t.Fatalf("found round-trip = %q %v %v", v, found, err)
	}
	if _, found, err := DecodeValueResp(AppendValueResp(nil, false, nil)); err != nil || found {
		t.Fatalf("missing round-trip = %v %v", found, err)
	}
	if _, _, err := DecodeValueResp(nil); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("empty payload err = %v", err)
	}
}

// FuzzFrame feeds arbitrary bytes through the frame reader and every
// payload decoder: torn, oversized, and garbage input must error
// cleanly — never panic, never allocate beyond the frame cap.
func FuzzFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add(AppendFrame(nil, TGet, 42, AppendKey(nil, []byte("seed-key"))))
	f.Add(AppendFrame(nil, TBatch, 1, AppendBatch(nil, []kvstore.Op{
		{Key: []byte("a"), Val: []byte("b")}, {Key: []byte("c"), Delete: true},
	})))
	huge := binary.LittleEndian.AppendUint32(nil, 1<<30)
	f.Add(append(huge, 0xff))

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		var buf []byte
		for {
			frame, b, err := ReadFrame(r, buf)
			buf = b
			if err != nil {
				return // any malformed input must land here, not panic
			}
			if len(frame.Pay) > MaxFrame {
				t.Fatalf("payload %d escaped the MaxFrame cap", len(frame.Pay))
			}
			// Feed every decoder regardless of the frame's claimed type:
			// decoders must be safe on any payload.
			DecodeKey(frame.Pay)       //nolint:errcheck // fuzz probes for panics; decode errors are expected on arbitrary payloads
			DecodePut(frame.Pay)       //nolint:errcheck // fuzz probes for panics; decode errors are expected on arbitrary payloads
			DecodeBatch(frame.Pay)     //nolint:errcheck // fuzz probes for panics; decode errors are expected on arbitrary payloads
			DecodeValueResp(frame.Pay) //nolint:errcheck // fuzz probes for panics; decode errors are expected on arbitrary payloads
			DecodeOKResp(frame.Pay)    //nolint:errcheck // fuzz probes for panics; decode errors are expected on arbitrary payloads
			DecodeErrResp(frame.Pay)   //nolint:errcheck // fuzz probes for panics; decode errors are expected on arbitrary payloads
		}
	})
}

// FuzzBatchRoundTrip: any batch the encoder produces, the decoder
// reproduces exactly.
func FuzzBatchRoundTrip(f *testing.F) {
	f.Add([]byte("key"), []byte("val"), false)
	f.Add([]byte(""), []byte(""), true)
	f.Fuzz(func(t *testing.T, key, val []byte, del bool) {
		if len(key) > 1<<16-1 {
			key = key[:1<<16-1]
		}
		op := kvstore.Op{Key: key, Delete: del}
		if !del {
			op.Val = val
		}
		got, err := DecodeBatch(AppendBatch(nil, []kvstore.Op{op}))
		if err != nil {
			t.Fatalf("round-trip decode failed: %v", err)
		}
		if len(got) != 1 || !bytes.Equal(got[0].Key, op.Key) || !bytes.Equal(got[0].Val, op.Val) || got[0].Delete != op.Delete {
			t.Fatalf("round-trip mismatch: %+v vs %+v", got[0], op)
		}
	})
}
