package lockmgr

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestCompatibilityMatrix(t *testing.T) {
	// Rows/columns: IS, IX, S, X — the standard multi-granularity matrix.
	want := map[[2]Mode]bool{
		{IS, IS}: true, {IS, IX}: true, {IS, S}: true, {IS, X}: false,
		{IX, IS}: true, {IX, IX}: true, {IX, S}: false, {IX, X}: false,
		{S, IS}: true, {S, IX}: false, {S, S}: true, {S, X}: false,
		{X, IS}: false, {X, IX}: false, {X, S}: false, {X, X}: false,
	}
	for pair, ok := range want {
		if compatible[pair[0]][pair[1]] != ok {
			t.Errorf("compatible[%v][%v] = %v, want %v", pair[0], pair[1], !ok, ok)
		}
	}
}

func TestCoversAndSup(t *testing.T) {
	if !covers(X, S) || !covers(X, IS) || !covers(X, IX) || !covers(X, X) {
		t.Error("X should cover everything")
	}
	if !covers(S, IS) || covers(S, IX) || covers(S, X) {
		t.Error("S covers IS only (besides itself)")
	}
	if !covers(IX, IS) || covers(IX, S) {
		t.Error("IX covers IS only (besides itself)")
	}
	if got := sup(S, IX); got != X {
		t.Errorf("sup(S, IX) = %v, want X (no SIX mode)", got)
	}
	if got := sup(IS, S); got != S {
		t.Errorf("sup(IS, S) = %v, want S", got)
	}
}

func TestSharedLocksCoexist(t *testing.T) {
	m := New()
	if err := m.Lock(1, 100, S, time.Second); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(2, 100, S, time.Second); err != nil {
		t.Fatalf("second shared lock blocked: %v", err)
	}
	if !m.TryLock(3, 100, IS) {
		t.Error("IS should coexist with S")
	}
	if m.TryLock(4, 100, X) {
		t.Error("X should conflict with S holders")
	}
}

func TestExclusiveBlocksAndReleases(t *testing.T) {
	m := New()
	if err := m.Lock(1, 5, X, time.Second); err != nil {
		t.Fatal(err)
	}
	acquired := make(chan error, 1)
	go func() { acquired <- m.Lock(2, 5, X, 5*time.Second) }()
	select {
	case err := <-acquired:
		t.Fatalf("second X acquired while first held: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	m.Unlock(1, 5)
	if err := <-acquired; err != nil {
		t.Fatalf("waiter not granted after release: %v", err)
	}
	if mode, ok := m.HeldMode(2, 5); !ok || mode != X {
		t.Errorf("holder 2 mode = %v/%v, want X/true", mode, ok)
	}
}

func TestTimeoutIsDeadlockVictim(t *testing.T) {
	m := New()
	if err := m.Lock(1, 9, X, time.Second); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err := m.Lock(2, 9, S, 30*time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Errorf("timed out after %v, expected ≥30ms", elapsed)
	}
	// The timed-out waiter must be gone: a later release grants nothing to
	// it, and the key state stays clean.
	m.Unlock(1, 9)
	if !m.TryLock(3, 9, X) {
		t.Error("key not free after timeout and release")
	}
	if m.Stats().Timeouts != 1 {
		t.Errorf("Timeouts = %d, want 1", m.Stats().Timeouts)
	}
}

func TestUpgradeSharedToExclusive(t *testing.T) {
	m := New()
	if err := m.Lock(1, 7, S, time.Second); err != nil {
		t.Fatal(err)
	}
	// Upgrade with no other holders is immediate.
	if err := m.Lock(1, 7, X, time.Second); err != nil {
		t.Fatalf("upgrade: %v", err)
	}
	if mode, _ := m.HeldMode(1, 7); mode != X {
		t.Errorf("mode after upgrade = %v, want X", mode)
	}

	// Upgrade while another S holder exists must wait for it.
	m2 := New()
	if err := m2.Lock(1, 7, S, time.Second); err != nil {
		t.Fatal(err)
	}
	if err := m2.Lock(2, 7, S, time.Second); err != nil {
		t.Fatal(err)
	}
	upgraded := make(chan error, 1)
	go func() { upgraded <- m2.Lock(1, 7, X, 5*time.Second) }()
	select {
	case err := <-upgraded:
		t.Fatalf("upgrade granted despite other S holder: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	m2.Unlock(2, 7)
	if err := <-upgraded; err != nil {
		t.Fatalf("upgrade after release: %v", err)
	}
}

func TestUpgradeJumpsQueue(t *testing.T) {
	m := New()
	if err := m.Lock(1, 3, S, time.Second); err != nil {
		t.Fatal(err)
	}
	// Owner 2 queues for X behind owner 1's S.
	got2 := make(chan error, 1)
	go func() { got2 <- m.Lock(2, 3, X, 5*time.Second) }()
	time.Sleep(20 * time.Millisecond)
	// Owner 1 upgrades; as a holder it bypasses the queue instead of
	// deadlocking behind owner 2.
	if err := m.Lock(1, 3, X, time.Second); err != nil {
		t.Fatalf("holder upgrade should jump the queue: %v", err)
	}
	m.Unlock(1, 3)
	if err := <-got2; err != nil {
		t.Fatalf("queued X eventually granted: %v", err)
	}
}

func TestReacquireHeldIsNoop(t *testing.T) {
	m := New()
	if err := m.Lock(1, 11, X, time.Second); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(1, 11, S, time.Second); err != nil {
		t.Fatalf("weaker re-request should be covered: %v", err)
	}
	if got := m.Stats().Acquires; got != 1 {
		t.Errorf("Acquires = %d, want 1 (covered request is free)", got)
	}
}

func TestReleaseAll(t *testing.T) {
	m := New()
	for k := uint64(0); k < 20; k++ {
		if err := m.Lock(1, k, X, time.Second); err != nil {
			t.Fatal(err)
		}
	}
	if n := m.ReleaseAll(1); n != 20 {
		t.Errorf("ReleaseAll released %d, want 20", n)
	}
	for k := uint64(0); k < 20; k++ {
		if !m.TryLock(2, k, X) {
			t.Errorf("key %d still locked after ReleaseAll", k)
		}
	}
	if n := m.ReleaseAll(1); n != 0 {
		t.Errorf("second ReleaseAll released %d, want 0", n)
	}
}

func TestReleaseAllWakesWaiters(t *testing.T) {
	m := New()
	if err := m.Lock(1, 42, X, time.Second); err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() { got <- m.Lock(2, 42, S, 5*time.Second) }()
	time.Sleep(20 * time.Millisecond)
	m.ReleaseAll(1)
	if err := <-got; err != nil {
		t.Fatalf("waiter not woken by ReleaseAll: %v", err)
	}
}

func TestFIFOPreventsWriterStarvation(t *testing.T) {
	m := New()
	if err := m.Lock(1, 8, S, time.Second); err != nil {
		t.Fatal(err)
	}
	// Writer queues.
	wgot := make(chan error, 1)
	go func() { wgot <- m.Lock(2, 8, X, 5*time.Second) }()
	time.Sleep(20 * time.Millisecond)
	// A new reader must NOT jump past the queued writer.
	if m.TryLock(3, 8, S) {
		t.Fatal("reader bypassed queued writer")
	}
	m.Unlock(1, 8)
	if err := <-wgot; err != nil {
		t.Fatalf("writer: %v", err)
	}
}

func TestShutdownFailsWaiters(t *testing.T) {
	m := New()
	if err := m.Lock(1, 2, X, time.Second); err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() { got <- m.Lock(2, 2, X, 30*time.Second) }()
	time.Sleep(20 * time.Millisecond)
	m.Shutdown()
	if err := <-got; !errors.Is(err, ErrShutdown) {
		t.Fatalf("waiter err = %v, want ErrShutdown", err)
	}
	if err := m.Lock(3, 99, S, time.Second); !errors.Is(err, ErrShutdown) {
		t.Fatalf("post-shutdown lock err = %v, want ErrShutdown", err)
	}
	if m.TryLock(3, 98, S) {
		t.Error("TryLock should fail after shutdown")
	}
}

// TestMutualExclusionStress hammers one key with X locks from many
// goroutines and checks the critical section is exclusive.
func TestMutualExclusionStress(t *testing.T) {
	m := New()
	var inside atomic.Int32
	var violations atomic.Int32
	var wg sync.WaitGroup
	const goroutines = 16
	const iters = 200
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(owner uint64) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if err := m.Lock(owner, 1, X, 30*time.Second); err != nil {
					t.Errorf("lock: %v", err)
					return
				}
				if inside.Add(1) != 1 {
					violations.Add(1)
				}
				inside.Add(-1)
				m.Unlock(owner, 1)
			}
		}(uint64(g + 1))
	}
	wg.Wait()
	if v := violations.Load(); v != 0 {
		t.Errorf("%d mutual-exclusion violations", v)
	}
}

// TestReadersWritersStress mixes S and X lockers across many keys and
// verifies no writer overlaps a reader on the same key.
func TestReadersWritersStress(t *testing.T) {
	m := New()
	const keys = 8
	var readers, writers [keys]atomic.Int32
	var violations atomic.Int32
	var wg sync.WaitGroup
	for g := 0; g < 12; g++ {
		wg.Add(1)
		go func(owner uint64) {
			defer wg.Done()
			for i := 0; i < 150; i++ {
				k := uint64((int(owner) + i) % keys)
				if owner%3 == 0 {
					if err := m.Lock(owner, k, X, 30*time.Second); err != nil {
						t.Errorf("x lock: %v", err)
						return
					}
					if readers[k].Load() != 0 || writers[k].Add(1) != 1 {
						violations.Add(1)
					}
					writers[k].Add(-1)
					m.Unlock(owner, k)
				} else {
					if err := m.Lock(owner, k, S, 30*time.Second); err != nil {
						t.Errorf("s lock: %v", err)
						return
					}
					readers[k].Add(1)
					if writers[k].Load() != 0 {
						violations.Add(1)
					}
					readers[k].Add(-1)
					m.Unlock(owner, k)
				}
			}
		}(uint64(g + 1))
	}
	wg.Wait()
	if v := violations.Load(); v != 0 {
		t.Errorf("%d reader/writer violations", v)
	}
}

func TestUnlockUnheldIsNoop(t *testing.T) {
	m := New()
	m.Unlock(1, 55) // no state at all
	if err := m.Lock(1, 55, S, time.Second); err != nil {
		t.Fatal(err)
	}
	m.Unlock(2, 55) // different owner
	if mode, ok := m.HeldMode(1, 55); !ok || mode != S {
		t.Error("unlock by non-holder disturbed the lock")
	}
}
