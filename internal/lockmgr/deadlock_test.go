package lockmgr

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestTwoPartyDeadlockDetected: the classic A→1,B→2 then A→2,B→1 cycle is
// refused immediately, well before any timeout.
func TestTwoPartyDeadlockDetected(t *testing.T) {
	m := New()
	if err := m.Lock(1, 101, X, time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(2, 102, X, time.Minute); err != nil {
		t.Fatal(err)
	}
	got1 := make(chan error, 1)
	go func() { got1 <- m.Lock(1, 102, X, time.Minute) }()
	// Wait until owner 1 is queued on key 102.
	deadline := time.Now().Add(5 * time.Second)
	for {
		m.waitMu.Lock()
		_, waiting := m.waitingFor[1]
		m.waitMu.Unlock()
		if waiting {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("owner 1 never started waiting")
		}
		time.Sleep(time.Millisecond)
	}

	start := time.Now()
	err := m.Lock(2, 101, X, time.Minute)
	if !errors.Is(err, ErrDeadlockDetected) {
		t.Fatalf("closing edge err = %v, want ErrDeadlockDetected", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("detection took %v; should be immediate", elapsed)
	}
	if m.Stats().Deadlocks != 1 {
		t.Errorf("Deadlocks = %d, want 1", m.Stats().Deadlocks)
	}

	// The victim (owner 2) releases its locks; owner 1 proceeds.
	m.ReleaseAll(2)
	if err := <-got1; err != nil {
		t.Fatalf("survivor not granted: %v", err)
	}
}

// TestThreePartyDeadlockDetected builds a three-transaction cycle.
func TestThreePartyDeadlockDetected(t *testing.T) {
	m := New()
	for o := uint64(1); o <= 3; o++ {
		if err := m.Lock(o, 200+o, X, time.Minute); err != nil {
			t.Fatal(err)
		}
	}
	// 1 waits for 2's key, 2 waits for 3's key.
	errs := make(chan error, 2)
	go func() { errs <- m.Lock(1, 202, X, time.Minute) }()
	go func() { errs <- m.Lock(2, 203, X, time.Minute) }()
	deadline := time.Now().Add(5 * time.Second)
	for {
		m.waitMu.Lock()
		n := len(m.waitingFor)
		m.waitMu.Unlock()
		if n == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("waiters never queued")
		}
		time.Sleep(time.Millisecond)
	}
	// 3 → 1's key closes the cycle.
	if err := m.Lock(3, 201, X, time.Minute); !errors.Is(err, ErrDeadlockDetected) {
		t.Fatalf("err = %v, want ErrDeadlockDetected", err)
	}
	// Victim 3 releases; the chain drains.
	m.ReleaseAll(3)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(2)
	m.ReleaseAll(1)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
}

// TestUpgradeUpgradeDeadlockDetected: two S holders both upgrading to X is
// the textbook undetectable-by-FIFO deadlock; the detector must catch it.
func TestUpgradeUpgradeDeadlockDetected(t *testing.T) {
	m := New()
	if err := m.Lock(1, 5, S, time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(2, 5, S, time.Minute); err != nil {
		t.Fatal(err)
	}
	got1 := make(chan error, 1)
	go func() { got1 <- m.Lock(1, 5, X, time.Minute) }()
	deadline := time.Now().Add(5 * time.Second)
	for {
		m.waitMu.Lock()
		_, waiting := m.waitingFor[1]
		m.waitMu.Unlock()
		if waiting {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("upgrade never queued")
		}
		time.Sleep(time.Millisecond)
	}
	if err := m.Lock(2, 5, X, time.Minute); !errors.Is(err, ErrDeadlockDetected) {
		t.Fatalf("second upgrade err = %v, want ErrDeadlockDetected", err)
	}
	m.ReleaseAll(2)
	if err := <-got1; err != nil {
		t.Fatalf("first upgrade: %v", err)
	}
}

// TestNoFalsePositiveOnChains: a straight-line wait chain (no cycle) is
// not reported as a deadlock.
func TestNoFalsePositiveOnChains(t *testing.T) {
	m := New()
	if err := m.Lock(1, 50, X, time.Minute); err != nil {
		t.Fatal(err)
	}
	done2 := make(chan error, 1)
	done3 := make(chan error, 1)
	go func() { done2 <- m.Lock(2, 50, X, time.Minute) }()
	time.Sleep(10 * time.Millisecond)
	go func() { done3 <- m.Lock(3, 50, X, time.Minute) }()
	time.Sleep(10 * time.Millisecond)
	select {
	case err := <-done2:
		t.Fatalf("chained waiter 2 returned early: %v", err)
	case err := <-done3:
		t.Fatalf("chained waiter 3 returned early: %v", err)
	default:
	}
	m.Unlock(1, 50)
	if err := <-done2; err != nil {
		t.Fatal(err)
	}
	m.Unlock(2, 50)
	if err := <-done3; err != nil {
		t.Fatal(err)
	}
	if m.Stats().Deadlocks != 0 {
		t.Errorf("false positives: %d", m.Stats().Deadlocks)
	}
}

// TestDeadlockStress runs transfer-style opposite-order lockers and
// requires the system to keep making progress, resolving every deadlock
// via detection (not timeouts — the generous timeout would fail the test
// by stalling it).
func TestDeadlockStress(t *testing.T) {
	m := New()
	var committed atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(owner uint64) {
			defer wg.Done()
			a, b := uint64(900), uint64(901)
			if owner%2 == 0 {
				a, b = b, a
			}
			for i := 0; i < 100; i++ {
			retry:
				if err := m.Lock(owner, a, X, 30*time.Second); err != nil {
					if errors.Is(err, ErrDeadlockDetected) {
						m.ReleaseAll(owner)
						goto retry
					}
					t.Errorf("lock a: %v", err)
					return
				}
				if err := m.Lock(owner, b, X, 30*time.Second); err != nil {
					if errors.Is(err, ErrDeadlockDetected) {
						m.ReleaseAll(owner)
						goto retry
					}
					t.Errorf("lock b: %v", err)
					return
				}
				committed.Add(1)
				m.ReleaseAll(owner)
			}
		}(uint64(g + 1))
	}
	wg.Wait()
	if committed.Load() != 600 {
		t.Errorf("committed %d of 600", committed.Load())
	}
	st := m.Stats()
	if st.Timeouts != 0 {
		t.Errorf("%d waits resolved by timeout; the detector should have caught them", st.Timeouts)
	}
	t.Logf("deadlocks detected: %d", st.Deadlocks)
}
