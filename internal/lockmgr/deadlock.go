package lockmgr

import "errors"

// Deadlock detection. The timeout in Lock is a complete (if slow)
// resolution mechanism; the detector below catches most deadlocks
// instantly, at the moment the closing edge of a waits-for cycle would be
// created. When a lock request must wait, the manager records a
// waits-for edge (requester → key) and walks the graph: requester waits
// for the holders of its key, each of which may itself be waiting for the
// holders of another key, and so on. If the walk returns to the
// requester, granting the wait can never make progress and the request
// fails with ErrDeadlockDetected — the engine aborts that transaction,
// releasing its locks.
//
// The walk takes the detector's registry mutex plus shard mutexes one at
// a time, never holding two shards at once, so it cannot itself deadlock
// with the lock paths. Races with concurrent grants can only produce
// stale edges, which err on the side of reporting a deadlock — a safe
// outcome, since the victim simply retries.

// ErrDeadlockDetected reports that a lock request would close a waits-for
// cycle. The requester must abort (its locks are part of the cycle).
var ErrDeadlockDetected = errors.New("lockmgr: deadlock detected (waits-for cycle)")

// noteWaiting registers that owner is about to wait for key, then checks
// for a waits-for cycle through owner. It returns ErrDeadlockDetected if
// granting could never happen; the caller must then not enqueue. On nil,
// the caller enqueues and must call clearWaiting when the wait ends.
//
// lockorder:acquires Manager.waitMu
// lockorder:releases Manager.waitMu
func (m *Manager) noteWaiting(owner, key uint64) error {
	m.waitMu.Lock()
	m.waitingFor[owner] = key
	m.waitMu.Unlock()

	if m.cycleFrom(owner) {
		m.clearWaiting(owner)
		m.deadlocks.Add(1)
		return ErrDeadlockDetected
	}
	return nil
}

// clearWaiting removes owner's waits-for edge.
//
// lockorder:acquires Manager.waitMu
// lockorder:releases Manager.waitMu
func (m *Manager) clearWaiting(owner uint64) {
	m.waitMu.Lock()
	delete(m.waitingFor, owner)
	m.waitMu.Unlock()
}

// blockersOf returns the owners that currently prevent owner from
// acquiring key: incompatible holders, plus incompatible queued waiters
// ahead of it (FIFO order means they block too).
//
// alloc:allowed(deadlock detection runs only when a lock wait begins — already off the uncontended fast path)
func (m *Manager) blockersOf(owner, key uint64) []uint64 {
	sh := m.shardOf(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	ls := sh.locks[key]
	if ls == nil {
		return nil
	}
	w := m.waitModeLocked(ls, owner)
	if w == nil {
		// The owner is no longer queued on this key (granted or timed out
		// between the waits-for snapshot and this read): the edge is
		// stale, so it blocks on nothing.
		return nil
	}
	mode := w.mode
	var out []uint64
	for h, hm := range ls.holders {
		if h != owner && !compatible[hm][mode] {
			out = append(out, h)
		}
	}
	for _, q := range ls.queue {
		if q.owner == owner {
			break
		}
		if !compatible[q.mode][mode] {
			out = append(out, q.owner)
		}
	}
	return out
}

// waitModeLocked finds owner's queued waiter on ls, if any. Caller holds
// the shard mutex.
func (m *Manager) waitModeLocked(ls *lockState, owner uint64) *waiter {
	for _, w := range ls.queue {
		if w.owner == owner {
			return w
		}
	}
	return nil
}

// cycleFrom reports whether the waits-for graph contains a cycle through
// start.
//
// alloc:allowed(deadlock detection runs only when a lock wait begins — already off the uncontended fast path)
func (m *Manager) cycleFrom(start uint64) bool {
	// Snapshot the wait edges once; holder sets are read per key during
	// the walk.
	m.waitMu.Lock()
	waits := make(map[uint64]uint64, len(m.waitingFor))
	for o, k := range m.waitingFor {
		waits[o] = k
	}
	m.waitMu.Unlock()

	visited := make(map[uint64]bool)
	var walk func(owner uint64) bool
	walk = func(owner uint64) bool {
		key, waiting := waits[owner]
		if !waiting {
			return false
		}
		for _, blocker := range m.blockersOf(owner, key) {
			if blocker == start {
				return true
			}
			if visited[blocker] {
				continue
			}
			visited[blocker] = true
			if walk(blocker) {
				return true
			}
		}
		return false
	}
	return walk(start)
}
