package lockmgr

import (
	"sync"
	"testing"
	"time"
)

// BenchmarkUncontendedLockUnlock measures the fast path the paper prices
// at C_lock per operation.
func BenchmarkUncontendedLockUnlock(b *testing.B) {
	m := New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Lock(1, uint64(i%1024), X, time.Second); err != nil {
			b.Fatal(err)
		}
		m.Unlock(1, uint64(i%1024))
	}
}

// BenchmarkSharedHolders measures S acquisition with other S holders
// present (the checkpointer's common case on clean segments).
func BenchmarkSharedHolders(b *testing.B) {
	m := New()
	for owner := uint64(2); owner < 6; owner++ {
		if err := m.Lock(owner, 7, S, time.Second); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Lock(1, 7, S, time.Second); err != nil {
			b.Fatal(err)
		}
		m.Unlock(1, 7)
	}
}

// BenchmarkReleaseAll measures the strict-2PL commit release of a
// transaction holding the paper's N_ru record locks plus intent locks.
func BenchmarkReleaseAll(b *testing.B) {
	m := New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k := uint64(0); k < 5; k++ {
			if err := m.Lock(1, k, X, time.Second); err != nil {
				b.Fatal(err)
			}
			if err := m.Lock(1, 1<<63|k, IX, time.Second); err != nil {
				b.Fatal(err)
			}
		}
		if n := m.ReleaseAll(1); n != 10 {
			b.Fatalf("released %d", n)
		}
	}
}

// BenchmarkContendedHandoff measures lock handoff between two goroutines
// ping-ponging an exclusive lock.
func BenchmarkContendedHandoff(b *testing.B) {
	m := New()
	var wg sync.WaitGroup
	iters := b.N
	b.ResetTimer()
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(owner uint64) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if err := m.Lock(owner, 3, X, 30*time.Second); err != nil {
					b.Error(err)
					return
				}
				m.Unlock(owner, 3)
			}
		}(uint64(g + 1))
	}
	wg.Wait()
}
