// Package lockmgr implements the lock manager used for synchronization
// between transactions and the checkpointer (Section 2.1 of Salem &
// Garcia-Molina charges C_lock per lock or unlock operation; Section 3.2
// describes the locking the consistent checkpoint algorithms require).
//
// The manager supports multi-granularity modes: transactions take
// shared/exclusive locks on records and intention locks (IS/IX) on the
// records' segments, while a two-color checkpointer takes a shared lock on
// a whole segment, which conflicts with in-flight writers of that segment
// exactly as Pu's algorithm requires. Waits are FIFO with a timeout, which
// doubles as the deadlock resolution mechanism.
package lockmgr

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"mmdb/internal/obs"
)

// Mode is a lock mode.
type Mode uint8

// Lock modes, in the usual multi-granularity hierarchy.
const (
	// IS is intention-shared: the holder reads finer-grained items below.
	IS Mode = iota
	// IX is intention-exclusive: the holder writes finer items below.
	IX
	// S is shared.
	S
	// X is exclusive.
	X
	numModes
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case IS:
		return "IS"
	case IX:
		return "IX"
	case S:
		return "S"
	case X:
		return "X"
	default:
		return fmt.Sprintf("lockmgr.Mode(%d)", uint8(m))
	}
}

// compatible[a][b] reports whether modes a and b may be held concurrently
// by different transactions.
var compatible = [numModes][numModes]bool{
	IS: {IS: true, IX: true, S: true, X: false},
	IX: {IS: true, IX: true, S: false, X: false},
	S:  {IS: true, IX: false, S: true, X: false},
	X:  {IS: false, IX: false, S: false, X: false},
}

// covers reports whether holding mode a subsumes a request for mode b.
func covers(a, b Mode) bool {
	if a == b || a == X {
		return true
	}
	switch a {
	case S:
		return b == IS
	case IX:
		return b == IS
	}
	return false
}

// sup returns the least mode covering both a and b (S+IX escalates to X;
// there is no SIX mode in this manager).
func sup(a, b Mode) Mode {
	if covers(a, b) {
		return a
	}
	if covers(b, a) {
		return b
	}
	return X
}

// ErrTimeout reports that a lock wait exceeded its deadline. The engine
// treats it as a deadlock victim signal and aborts the transaction.
var ErrTimeout = errors.New("lockmgr: lock wait timed out (possible deadlock)")

// ErrShutdown reports that the manager was shut down while waiting.
var ErrShutdown = errors.New("lockmgr: manager shut down")

type waiter struct {
	owner   uint64
	mode    Mode
	upgrade bool
	ready   chan error // buffered(1): receives nil on grant
}

type lockState struct {
	holders map[uint64]Mode
	queue   []*waiter
}

// empty reports whether the lock state can be garbage collected.
func (ls *lockState) empty() bool { return len(ls.holders) == 0 && len(ls.queue) == 0 }

// compatibleWithHolders reports whether owner may acquire mode given the
// current holders (ignoring owner's own holding).
func (ls *lockState) compatibleWithHolders(owner uint64, mode Mode) bool {
	for h, hm := range ls.holders {
		if h == owner {
			continue
		}
		if !compatible[hm][mode] {
			return false
		}
	}
	return true
}

const numShards = 64

// freelistSize bounds the per-shard recycling stacks below. Sixteen
// lock states and holdings maps per shard covers the steady-state churn
// of record locks (acquire on access, release at commit) without
// pinning unbounded memory after a burst.
const freelistSize = 16

type shard struct {
	mu sync.Mutex // lockorder:level=60
	// locks is the lock table of this shard. guarded_by:mu
	locks map[uint64]*lockState
	// holdings maps owner -> key -> mode. guarded_by:mu
	holdings map[uint64]map[uint64]Mode
	// lsFree recycles lockState objects: the acquire/release cycle of an
	// uncontended record lock creates and destroys one per transaction,
	// and without recycling that is two heap allocations per lock.
	// guarded_by:mu
	lsFree [freelistSize]*lockState
	// lsFreeN is the number of live entries in lsFree. guarded_by:mu
	lsFreeN int
	// hkFree recycles per-owner holdings maps, emptied. guarded_by:mu
	hkFree [freelistSize]map[uint64]Mode
	// hkFreeN is the number of live entries in hkFree. guarded_by:mu
	hkFreeN int
	// shutdown fails new requests once set. guarded_by:mu
	shutdown bool
}

// getLockState returns a recycled or fresh lockState.
// lockcheck:held sh.mu
func (sh *shard) getLockState() *lockState {
	if sh.lsFreeN > 0 {
		sh.lsFreeN--
		ls := sh.lsFree[sh.lsFreeN]
		sh.lsFree[sh.lsFreeN] = nil
		return ls
	}
	return &lockState{holders: make(map[uint64]Mode, 2)} // alloc:allowed(freelist miss: the state is recycled once the lock empties)
}

// putLockState parks an empty lockState for reuse. The holders map is
// already empty (ls.empty() gates every call); the queue keeps its
// capacity for the next contention burst.
// lockcheck:held sh.mu
func (sh *shard) putLockState(ls *lockState) {
	if sh.lsFreeN == len(sh.lsFree) {
		return
	}
	ls.queue = ls.queue[:0]
	sh.lsFree[sh.lsFreeN] = ls
	sh.lsFreeN++
}

// getHoldings returns a recycled or fresh empty holdings map.
// lockcheck:held sh.mu
func (sh *shard) getHoldings() map[uint64]Mode {
	if sh.hkFreeN > 0 {
		sh.hkFreeN--
		hk := sh.hkFree[sh.hkFreeN]
		sh.hkFree[sh.hkFreeN] = nil
		return hk
	}
	return make(map[uint64]Mode, 4) // alloc:allowed(freelist miss: the map is recycled when the owner's last lock is released)
}

// putHoldings parks an emptied holdings map for reuse.
// lockcheck:held sh.mu
func (sh *shard) putHoldings(hk map[uint64]Mode) {
	if sh.hkFreeN == len(sh.hkFree) {
		return
	}
	clear(hk)
	sh.hkFree[sh.hkFreeN] = hk
	sh.hkFreeN++
}

// Manager is a sharded lock table.
//
// For the static lock-order analysis the whole logical lock table is one
// class, ordered after the engine's checkpoint/transaction mutexes and
// before the latches and log mutex the checkpointer touches while
// holding a segment's S lock:
//
// lockorder:declare Manager.table level=30
type Manager struct {
	shards [numShards]shard

	// Counters for the paper's C_lock accounting.
	acquires  atomic.Uint64
	releases  atomic.Uint64
	waits     atomic.Uint64
	timeouts  atomic.Uint64
	deadlocks atomic.Uint64

	waitMu sync.Mutex // lockorder:level=70
	// waitingFor is the waits-for registry for deadlock detection,
	// mapping owner → key it waits for. guarded_by:waitMu
	waitingFor map[uint64]uint64

	// waitH, when set, records wait time (enqueue to grant, timeout, or
	// deadlock refusal). txnWaitH, when set, additionally records waits
	// by non-zero owners (transactions, not the checkpointer) — the
	// lock-wait share of commit-latency attribution. Both reuse the same
	// clock reads on the contended path only; the uncontended grant path
	// never reads the clock. Set once via SetMetrics before the manager
	// is shared.
	waitH    *obs.Histogram
	txnWaitH *obs.Histogram
}

// SetMetrics installs the lock-wait latency histograms. txnWaitSeconds
// (which may be nil) receives only waits by non-zero owners, i.e.
// transactions rather than the checkpointer. Call it after New and
// before the manager is shared across goroutines.
func (m *Manager) SetMetrics(waitSeconds, txnWaitSeconds *obs.Histogram) {
	m.waitH = waitSeconds
	m.txnWaitH = txnWaitSeconds
}

// New returns an empty lock manager.
func New() *Manager {
	m := &Manager{waitingFor: make(map[uint64]uint64)}
	for i := range m.shards {
		m.shards[i].locks = make(map[uint64]*lockState)         //nolint:lockcheck // not shared until New returns
		m.shards[i].holdings = make(map[uint64]map[uint64]Mode) //nolint:lockcheck // not shared until New returns
	}
	return m
}

func (m *Manager) shardOf(key uint64) *shard {
	// Fibonacci hashing spreads sequential keys across shards.
	return &m.shards[(key*0x9E3779B97F4A7C15)>>(64-6)]
}

// Stats is a snapshot of manager activity.
type Stats struct {
	Acquires uint64
	Releases uint64
	Waits    uint64
	Timeouts uint64
	// Deadlocks counts requests refused by the waits-for cycle detector.
	Deadlocks uint64
}

// Stats returns a snapshot of the counters.
func (m *Manager) Stats() Stats {
	return Stats{Acquires: m.acquires.Load(), Releases: m.releases.Load(),
		Waits: m.waits.Load(), Timeouts: m.timeouts.Load(), Deadlocks: m.deadlocks.Load()}
}

// Lock acquires key in mode for owner, waiting up to timeout. A request
// already covered by the owner's current holding returns immediately; a
// stronger request upgrades (upgrades jump the queue, which keeps the
// common S→X record upgrade from deadlocking against queued requests).
// timeout <= 0 means wait forever.
//
// perf:hotpath(every record access acquires through here; C_lock in the paper's cost model)
//
// lockorder:acquires Manager.table
func (m *Manager) Lock(owner, key uint64, mode Mode, timeout time.Duration) error {
	sh := m.shardOf(key)
	sh.mu.Lock()
	if sh.shutdown {
		sh.mu.Unlock()
		return ErrShutdown
	}
	ls := sh.locks[key]
	if ls == nil {
		ls = sh.getLockState()
		sh.locks[key] = ls
	}

	held, isHolder := ls.holders[owner]
	if isHolder && covers(held, mode) {
		sh.mu.Unlock()
		return nil
	}
	want := mode
	if isHolder {
		want = sup(held, mode)
	}

	// Immediate grant: compatible with other holders, and either the queue
	// is empty or this is an upgrade (upgrades may bypass the queue; a
	// queued waiter is by definition not yet a holder, so the bypass
	// cannot violate compatibility once holders are checked).
	if ls.compatibleWithHolders(owner, want) && (len(ls.queue) == 0 || isHolder) {
		ls.holders[owner] = want
		m.recordHolding(sh, owner, key, want)
		sh.mu.Unlock()
		m.acquires.Add(1)
		return nil
	}

	// alloc:allowed(contended path: the waiter and its grant channel outlive this frame while the goroutine blocks)
	w := &waiter{owner: owner, mode: want, upgrade: isHolder, ready: make(chan error, 1)}
	if isHolder {
		// Upgrades go to the front of the queue.
		ls.queue = append([]*waiter{w}, ls.queue...) // alloc:allowed(contended path: upgrade prepend, rare)
	} else {
		ls.queue = append(ls.queue, w) // alloc:allowed(contended path: queue growth is amortized, capacity is recycled)
	}
	sh.mu.Unlock()
	m.waits.Add(1)
	if m.waitH != nil || m.txnWaitH != nil {
		defer m.observeWait(owner, time.Now())
	}

	// The wait is registered in the waits-for graph; if it closes a
	// cycle, fail now instead of stalling until the timeout.
	if derr := m.noteWaiting(owner, key); derr != nil {
		if m.dequeue(sh, key, ls, w) {
			return derr
		}
		// A racing grant beat the detector; take it.
		if err := <-w.ready; err != nil {
			return err
		}
		m.acquires.Add(1)
		return nil
	}
	defer m.clearWaiting(owner)

	var timer *time.Timer
	var timeoutC <-chan time.Time
	if timeout > 0 {
		timer = time.NewTimer(timeout)
		timeoutC = timer.C
		defer timer.Stop()
	}

	select {
	case err := <-w.ready:
		if err != nil {
			return err
		}
		m.acquires.Add(1)
		return nil
	case <-timeoutC:
		// Remove ourselves from the queue; a concurrent grant may have
		// raced with the timer, in which case the grant wins.
		if !m.dequeue(sh, key, ls, w) {
			if err := <-w.ready; err != nil {
				return err
			}
			m.acquires.Add(1)
			return nil
		}
		m.timeouts.Add(1)
		return ErrTimeout
	}
}

// observeWait records one contended wait's duration into the manager's
// histogram and, for transaction owners (non-zero), into the
// commit-attribution histogram. Deferred from the contended path only.
func (m *Manager) observeWait(owner uint64, began time.Time) {
	d := uint64(time.Since(began))
	m.waitH.Observe(d)
	if owner != 0 {
		m.txnWaitH.Observe(d)
	}
}

// dequeue removes waiter w from key's queue and re-runs grant processing
// (w's departure may unblock waiters behind it). It reports whether w was
// still queued; false means a grant raced and w.ready holds the outcome.
func (m *Manager) dequeue(sh *shard, key uint64, ls *lockState, w *waiter) bool {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for i, q := range ls.queue {
		if q == w {
			// Shift-down removal (not append(q[:i], q[i+1:]...)): removal
			// can never grow the slice, and spelling it with copy keeps
			// the commit-path release provably allocation-free.
			copy(ls.queue[i:], ls.queue[i+1:])
			ls.queue[len(ls.queue)-1] = nil
			ls.queue = ls.queue[:len(ls.queue)-1]
			m.grantLocked(sh, key, ls)
			if ls.empty() {
				delete(sh.locks, key)
				sh.putLockState(ls)
			}
			return true
		}
	}
	return false
}

// TryLock attempts a non-blocking acquisition and reports success. The
// two-color checkpointer uses it to "find a white segment that is not
// exclusively locked" before falling back to a blocking wait (Figure 3.1).
//
// perf:hotpath(checkpointer segment probe; must not allocate per probe)
//
// lockorder:acquires Manager.table
func (m *Manager) TryLock(owner, key uint64, mode Mode) bool {
	sh := m.shardOf(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.shutdown {
		return false
	}
	ls := sh.locks[key]
	if ls == nil {
		ls = sh.getLockState()
		sh.locks[key] = ls
	}
	held, isHolder := ls.holders[owner]
	if isHolder && covers(held, mode) {
		return true
	}
	want := mode
	if isHolder {
		want = sup(held, mode)
	}
	if ls.compatibleWithHolders(owner, want) && (len(ls.queue) == 0 || isHolder) {
		ls.holders[owner] = want
		m.recordHolding(sh, owner, key, want)
		m.acquires.Add(1)
		return true
	}
	if ls.empty() {
		delete(sh.locks, key)
		sh.putLockState(ls)
	}
	return false
}

// recordHolding updates the owner->keys index. Caller holds sh.mu.
// lockcheck:held sh.mu
func (m *Manager) recordHolding(sh *shard, owner, key uint64, mode Mode) {
	hk := sh.holdings[owner]
	if hk == nil {
		hk = sh.getHoldings()
		sh.holdings[owner] = hk
	}
	hk[key] = mode
}

// grantLocked promotes queued waiters in FIFO order while they are
// compatible. Caller holds sh.mu.
// lockcheck:held sh.mu
func (m *Manager) grantLocked(sh *shard, key uint64, ls *lockState) {
	// ctxcheck:exempt(ready is buffered(1) and receives exactly one outcome per waiter, so the send never blocks)
	for len(ls.queue) > 0 {
		w := ls.queue[0]
		held, isHolder := ls.holders[w.owner]
		want := w.mode
		if isHolder {
			want = sup(held, w.mode)
		}
		if !ls.compatibleWithHolders(w.owner, want) {
			return
		}
		ls.holders[w.owner] = want
		m.recordHolding(sh, w.owner, key, want)
		ls.queue = ls.queue[1:]
		// Drop the owner's waits-for edge at grant time, not when its
		// goroutine wakes — a stale edge would read as a phantom cycle to
		// the deadlock detector. (waitMu nests strictly inside sh.mu here;
		// the detector never holds waitMu while taking a shard lock.)
		m.clearWaiting(w.owner)
		w.ready <- nil
	}
}

// Unlock releases owner's lock on key. Releasing a lock that is not held
// is a no-op (idempotent release simplifies abort paths).
//
// perf:hotpath(single-lock release; C_lock in the paper's cost model)
//
// lockorder:releases Manager.table
func (m *Manager) Unlock(owner, key uint64) {
	sh := m.shardOf(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	ls := sh.locks[key]
	if ls == nil {
		return
	}
	if _, ok := ls.holders[owner]; !ok {
		return
	}
	delete(ls.holders, owner)
	if hk := sh.holdings[owner]; hk != nil {
		delete(hk, key)
		if len(hk) == 0 {
			delete(sh.holdings, owner)
			sh.putHoldings(hk)
		}
	}
	m.releases.Add(1)
	m.grantLocked(sh, key, ls)
	if ls.empty() {
		delete(sh.locks, key)
		sh.putLockState(ls)
	}
}

// ReleaseAll releases every lock owner holds (commit/abort lock release
// under strict two-phase locking). It returns the number released.
//
// The walk deletes from the owner's holdings map while ranging over it,
// which Go's map iteration permits for the current key. grantLocked may
// run inside the loop, but it only ever touches the holdings maps of
// waiters being granted — and the releasing owner cannot be a queued
// waiter, since its (single) goroutine is executing here rather than
// blocked in Lock — so the ranged map is never mutated from the side.
//
// perf:hotpath(commit/abort lock release; must not allocate a key scratch list)
//
// lockorder:releases Manager.table
func (m *Manager) ReleaseAll(owner uint64) int {
	released := 0
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		hk := sh.holdings[owner]
		for key := range hk {
			delete(hk, key)
			ls := sh.locks[key]
			if ls == nil {
				continue
			}
			delete(ls.holders, owner)
			released++
			m.grantLocked(sh, key, ls)
			if ls.empty() {
				delete(sh.locks, key)
				sh.putLockState(ls)
			}
		}
		if hk != nil {
			delete(sh.holdings, owner)
			sh.putHoldings(hk)
		}
		sh.mu.Unlock()
	}
	if released > 0 {
		m.releases.Add(uint64(released))
	}
	return released
}

// HeldMode returns the mode owner holds on key and whether it holds one.
func (m *Manager) HeldMode(owner, key uint64) (Mode, bool) {
	sh := m.shardOf(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	ls := sh.locks[key]
	if ls == nil {
		return 0, false
	}
	mode, ok := ls.holders[owner]
	return mode, ok
}

// Shutdown fails all current and future waiters with ErrShutdown.
func (m *Manager) Shutdown() {
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		sh.shutdown = true
		for _, ls := range sh.locks {
			// ctxcheck:exempt(ready is buffered(1) and receives exactly one outcome per waiter, so the send never blocks)
			for _, w := range ls.queue {
				w.ready <- ErrShutdown
			}
			ls.queue = nil
		}
		sh.mu.Unlock()
	}
}
