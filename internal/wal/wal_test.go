package wal

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

func tempLogPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "test.log")
}

func mustOpen(t *testing.T, path string, opts Options) *Log {
	t.Helper()
	l, err := Open(path, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []*Record{
		{Type: TypeUpdate, TxnID: 7, RecordID: 42, Data: []byte("hello")},
		{Type: TypeUpdate, TxnID: 1, RecordID: 0, Data: []byte{}},
		{Type: TypeCommit, TxnID: 99},
		{Type: TypeAbort, TxnID: 3},
		{Type: TypeBeginCheckpoint, CheckpointID: 5, Timestamp: 123, TargetCopy: 1, Algorithm: 4,
			ActiveTxns: []ActiveTxn{{TxnID: 9, FirstLSN: 100}, {TxnID: 11, FirstLSN: NilLSN}}},
		{Type: TypeBeginCheckpoint, CheckpointID: 6, Timestamp: 1},
		{Type: TypeEndCheckpoint, CheckpointID: 5, TargetCopy: 1},
	}
	for i, rec := range cases {
		enc, err := appendEncoded(nil, rec)
		if err != nil {
			t.Fatalf("case %d: encode: %v", i, err)
		}
		wantLen, err := EncodedLen(rec)
		if err != nil {
			t.Fatalf("case %d: EncodedLen: %v", i, err)
		}
		if len(enc) != wantLen {
			t.Errorf("case %d: encoded %d bytes, EncodedLen says %d", i, len(enc), wantLen)
		}
		got, n, err := decodeFrom(enc)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if n != len(enc) {
			t.Errorf("case %d: decode consumed %d of %d", i, n, len(enc))
		}
		normalize := func(r *Record) *Record {
			cp := *r
			if cp.Data == nil {
				cp.Data = []byte{}
			}
			if cp.ActiveTxns == nil {
				cp.ActiveTxns = []ActiveTxn{}
			}
			return &cp
		}
		if rec.Type == TypeUpdate || rec.Type == TypeBeginCheckpoint {
			if !reflect.DeepEqual(normalize(got), normalize(rec)) {
				t.Errorf("case %d: round trip mismatch:\n got %+v\nwant %+v", i, got, rec)
			}
		} else if got.Type != rec.Type || got.TxnID != rec.TxnID || got.CheckpointID != rec.CheckpointID {
			t.Errorf("case %d: round trip mismatch: got %+v want %+v", i, got, rec)
		}
	}
}

func TestEncodeUnknownTypeFails(t *testing.T) {
	if _, err := appendEncoded(nil, &Record{Type: RecordType(200)}); err == nil {
		t.Fatal("expected error for unknown record type")
	}
	if _, err := EncodedLen(&Record{Type: RecordType(0)}); err == nil {
		t.Fatal("expected error from EncodedLen for unknown type")
	}
}

// TestUpdateRoundTripQuick property-tests the update-record codec over
// arbitrary payloads.
func TestUpdateRoundTripQuick(t *testing.T) {
	f := func(txn, rid uint64, data []byte) bool {
		rec := &Record{Type: TypeUpdate, TxnID: txn, RecordID: rid, Data: data}
		enc, err := appendEncoded(nil, rec)
		if err != nil {
			return false
		}
		got, n, err := decodeFrom(enc)
		if err != nil || n != len(enc) {
			return false
		}
		return got.TxnID == txn && got.RecordID == rid && bytes.Equal(got.Data, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestDecodeCorruptionQuick property-tests that any single-byte corruption
// of an encoded record is detected (CRC or framing).
func TestDecodeCorruptionQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	base := &Record{Type: TypeUpdate, TxnID: 5, RecordID: 10, Data: []byte("payload-bytes")}
	enc, err := appendEncoded(nil, base)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 500; trial++ {
		pos := rng.Intn(len(enc))
		delta := byte(1 + rng.Intn(255))
		mut := append([]byte(nil), enc...)
		mut[pos] ^= delta
		got, _, err := decodeFrom(mut)
		if err == nil {
			// Corruptions of the trailing length copy are only caught by
			// the trailer check; all were included. A successful decode
			// must at least reproduce the record exactly (it cannot, since
			// a bit changed within the framed bytes).
			t.Fatalf("corruption at byte %d (^%#x) went undetected: %+v", pos, delta, got)
		}
	}
}

func TestAppendFlushDurability(t *testing.T) {
	path := tempLogPath(t)
	l := mustOpen(t, path, Options{})
	start, end, err := l.Append(&Record{Type: TypeCommit, TxnID: 1})
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	if start != 0 {
		t.Errorf("first record LSN = %d, want 0", start)
	}
	if l.Durable(end) {
		t.Error("record durable before flush on volatile tail")
	}
	if err := l.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if !l.Durable(end) {
		t.Error("record not durable after flush")
	}
	if l.DurableLSN() != end {
		t.Errorf("DurableLSN = %d, want %d", l.DurableLSN(), end)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, _, err := l.Append(&Record{Type: TypeCommit, TxnID: 2}); err != ErrClosed {
		t.Errorf("Append after Close: err = %v, want ErrClosed", err)
	}
}

func TestStableTailDurableImmediately(t *testing.T) {
	l := mustOpen(t, tempLogPath(t), Options{StableTail: true})
	defer l.Close()
	_, end, err := l.Append(&Record{Type: TypeCommit, TxnID: 1})
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	if !l.Durable(end) {
		t.Error("stable-tail append not immediately durable")
	}
	if err := l.WaitDurable(end); err != nil {
		t.Errorf("WaitDurable on stable tail: %v", err)
	}
}

func TestWaitDurableFlushesInline(t *testing.T) {
	l := mustOpen(t, tempLogPath(t), Options{})
	defer l.Close()
	_, end, err := l.Append(&Record{Type: TypeCommit, TxnID: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.WaitDurable(end); err != nil {
		t.Fatalf("WaitDurable: %v", err)
	}
	if !l.Durable(end) {
		t.Error("WaitDurable returned but record not durable")
	}
}

func TestCrashLosesVolatileTail(t *testing.T) {
	path := tempLogPath(t)
	l := mustOpen(t, path, Options{})
	_, end1, err := l.Append(&Record{Type: TypeCommit, TxnID: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := l.Append(&Record{Type: TypeCommit, TxnID: 2}); err != nil {
		t.Fatal(err)
	}
	if err := l.Crash(); err != nil {
		t.Fatalf("Crash: %v", err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if LSN(fi.Size()) != end1+fileHeaderSize {
		t.Errorf("after crash file size = %d, want header + flushed watermark %d", fi.Size(), end1+fileHeaderSize)
	}
	r, err := OpenReader(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var txns []uint64
	if err := r.Scan(0, func(e Entry) error {
		txns = append(txns, e.Rec.TxnID)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(txns) != 1 || txns[0] != 1 {
		t.Errorf("after crash surviving txns = %v, want [1]", txns)
	}
}

func TestCrashKeepsStableTail(t *testing.T) {
	path := tempLogPath(t)
	l := mustOpen(t, path, Options{StableTail: true})
	if _, _, err := l.Append(&Record{Type: TypeCommit, TxnID: 1}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := l.Append(&Record{Type: TypeCommit, TxnID: 2}); err != nil {
		t.Fatal(err)
	}
	if err := l.Crash(); err != nil {
		t.Fatal(err)
	}
	r, err := OpenReader(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	n := 0
	if err := r.Scan(0, func(Entry) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("stable-tail crash kept %d records, want 2", n)
	}
}

func writeRecords(t *testing.T, path string, recs []*Record) []LSN {
	t.Helper()
	l := mustOpen(t, path, Options{})
	lsns := make([]LSN, len(recs))
	for i, r := range recs {
		start, _, err := l.Append(r)
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		lsns[i] = start
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return lsns
}

func TestForwardAndBackwardScan(t *testing.T) {
	path := tempLogPath(t)
	recs := []*Record{
		{Type: TypeUpdate, TxnID: 1, RecordID: 10, Data: []byte("a")},
		{Type: TypeBeginCheckpoint, CheckpointID: 1, Timestamp: 5},
		{Type: TypeCommit, TxnID: 1},
		{Type: TypeEndCheckpoint, CheckpointID: 1},
		{Type: TypeUpdate, TxnID: 2, RecordID: 11, Data: []byte("bb")},
	}
	writeRecords(t, path, recs)

	r, err := OpenReader(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	var fwd []RecordType
	if err := r.Scan(0, func(e Entry) error {
		fwd = append(fwd, e.Rec.Type)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want := []RecordType{TypeUpdate, TypeBeginCheckpoint, TypeCommit, TypeEndCheckpoint, TypeUpdate}
	if !reflect.DeepEqual(fwd, want) {
		t.Errorf("forward scan = %v, want %v", fwd, want)
	}

	end, err := r.ValidEnd(0)
	if err != nil {
		t.Fatal(err)
	}
	if end != r.Size() {
		t.Errorf("ValidEnd = %d, want file size %d", end, r.Size())
	}

	var bwd []RecordType
	if err := r.ScanBackward(end, func(e Entry) error {
		bwd = append(bwd, e.Rec.Type)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if bwd[i] != want[len(want)-1-i] {
			t.Errorf("backward scan[%d] = %v, want %v", i, bwd[i], want[len(want)-1-i])
		}
	}
}

func TestFindLastCompleted(t *testing.T) {
	path := tempLogPath(t)
	recs := []*Record{
		{Type: TypeBeginCheckpoint, CheckpointID: 1, Timestamp: 1},
		{Type: TypeEndCheckpoint, CheckpointID: 1},
		{Type: TypeBeginCheckpoint, CheckpointID: 2, Timestamp: 2,
			ActiveTxns: []ActiveTxn{{TxnID: 7, FirstLSN: 3}}},
		{Type: TypeEndCheckpoint, CheckpointID: 2},
		{Type: TypeBeginCheckpoint, CheckpointID: 3, Timestamp: 3}, // never completed
	}
	writeRecords(t, path, recs)
	r, err := OpenReader(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	end, err := r.ValidEnd(0)
	if err != nil {
		t.Fatal(err)
	}
	m, err := r.FindLastCompleted(end)
	if err != nil {
		t.Fatal(err)
	}
	if m.CheckpointID != 2 {
		t.Errorf("last completed checkpoint = %d, want 2", m.CheckpointID)
	}
	if m.ScanStart != 3 {
		t.Errorf("ScanStart = %d, want 3 (oldest active transaction)", m.ScanStart)
	}
	if _, err := r.FindCheckpoint(end, 1); err != nil {
		t.Errorf("FindCheckpoint(1): %v", err)
	}
	if _, err := r.FindCheckpoint(end, 99); err == nil {
		t.Error("FindCheckpoint(99) should fail")
	}
}

func TestTornTailStopsScan(t *testing.T) {
	path := tempLogPath(t)
	recs := []*Record{
		{Type: TypeCommit, TxnID: 1},
		{Type: TypeCommit, TxnID: 2},
	}
	writeRecords(t, path, recs)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the last record in half.
	if err := os.Truncate(path, fi.Size()-5); err != nil {
		t.Fatal(err)
	}
	r, err := OpenReader(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	n := 0
	if err := r.Scan(0, func(Entry) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("scan over torn log saw %d records, want 1", n)
	}
	end, err := r.ValidEnd(0)
	if err != nil {
		t.Fatal(err)
	}
	if end >= LSN(fi.Size()) {
		t.Errorf("ValidEnd %d should precede original size %d", end, fi.Size())
	}
}

func TestReopenAppends(t *testing.T) {
	path := tempLogPath(t)
	l := mustOpen(t, path, Options{})
	_, end1, err := l.Append(&Record{Type: TypeCommit, TxnID: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2 := mustOpen(t, path, Options{})
	start2, _, err := l2.Append(&Record{Type: TypeCommit, TxnID: 2})
	if err != nil {
		t.Fatal(err)
	}
	if start2 != end1 {
		t.Errorf("reopened log appended at %d, want %d", start2, end1)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := OpenReader(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	n := 0
	if err := r.Scan(0, func(Entry) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("reopened log has %d records, want 2", n)
	}
}

func TestConcurrentAppendersAssignDisjointLSNs(t *testing.T) {
	l := mustOpen(t, tempLogPath(t), Options{})
	defer l.Close()
	const goroutines = 8
	const perG = 200
	lsnCh := make(chan LSN, goroutines*perG)
	done := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			for i := 0; i < perG; i++ {
				start, _, err := l.Append(&Record{Type: TypeUpdate, TxnID: uint64(g), RecordID: uint64(i), Data: []byte("x")})
				if err != nil {
					t.Errorf("append: %v", err)
				}
				lsnCh <- start
			}
			done <- struct{}{}
		}(g)
	}
	for g := 0; g < goroutines; g++ {
		<-done
	}
	close(lsnCh)
	close(done)
	seen := make(map[LSN]bool)
	for lsn := range lsnCh {
		if seen[lsn] {
			t.Fatalf("duplicate LSN %d", lsn)
		}
		seen[lsn] = true
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := l.Stats().Appends; got != goroutines*perG {
		t.Errorf("Appends = %d, want %d", got, goroutines*perG)
	}
}

// TestBackwardEqualsReversedForwardQuick: for arbitrary record sequences,
// the backward scan visits exactly the reversed forward scan.
func TestBackwardEqualsReversedForwardQuick(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		path := filepath.Join(t.TempDir(), "q.log")
		l, err := Open(path, Options{})
		if err != nil {
			return false
		}
		count := int(n%40) + 1
		for i := 0; i < count; i++ {
			var rec *Record
			switch rng.Intn(4) {
			case 0:
				rec = &Record{Type: TypeUpdate, TxnID: rng.Uint64(), RecordID: rng.Uint64(),
					Data: make([]byte, rng.Intn(100))}
			case 1:
				rec = &Record{Type: TypeCommit, TxnID: rng.Uint64()}
			case 2:
				rec = &Record{Type: TypeBeginCheckpoint, CheckpointID: rng.Uint64(), Timestamp: rng.Uint64()}
			default:
				rec = &Record{Type: TypeEndCheckpoint, CheckpointID: rng.Uint64()}
			}
			if _, _, err := l.Append(rec); err != nil {
				return false
			}
		}
		if err := l.Close(); err != nil {
			return false
		}
		r, err := OpenReader(path)
		if err != nil {
			return false
		}
		defer r.Close()
		var fwd []LSN
		if err := r.Scan(0, func(e Entry) error {
			fwd = append(fwd, e.LSN)
			return nil
		}); err != nil {
			return false
		}
		var bwd []LSN
		if err := r.ScanBackward(r.Size(), func(e Entry) error {
			bwd = append(bwd, e.LSN)
			return nil
		}); err != nil {
			return false
		}
		if len(fwd) != count || len(bwd) != count {
			return false
		}
		for i := range fwd {
			if fwd[i] != bwd[len(bwd)-1-i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestBackgroundFlusher(t *testing.T) {
	l := mustOpen(t, tempLogPath(t), Options{FlushInterval: time.Millisecond})
	defer l.Close()
	_, end, err := l.Append(&Record{Type: TypeCommit, TxnID: 1})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for !l.Durable(end) {
		if time.Now().After(deadline) {
			t.Fatal("background flusher never flushed")
		}
		time.Sleep(time.Millisecond)
	}
}
