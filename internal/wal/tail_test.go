package wal

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// buildLog writes n small committed-transaction records and returns the
// log path and the end LSN of the flushed (durable) log.
func buildLog(t *testing.T, n int) (string, LSN) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "redo.log")
	l, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var end LSN
	for i := 0; i < n; i++ {
		_, end, err = l.Append(&Record{
			Type: TypeUpdate, TxnID: uint64(i + 1), RecordID: uint64(i),
			Data: []byte{0xAB, byte(i), 0xCD, byte(i >> 8)},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return path, end
}

// TestScanTailTruncated is the regression test for the torn-tail bug: a
// record frame cut off by the end of the file used to be reported as
// ErrCorrupt, indistinguishable from a checksum failure. It must be
// classified ErrTruncated, and the intact prefix must end exactly at the
// last whole record.
func TestScanTailTruncated(t *testing.T) {
	for _, cut := range []int64{1, 3, headerSize - 1, headerSize, headerSize + 2} {
		path, end := buildLog(t, 5)
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		// Cut into the last record: [cut] bytes past its start.
		r0, err := OpenReader(path)
		if err != nil {
			t.Fatal(err)
		}
		var lastStart LSN
		if err := r0.Scan(r0.Base(), func(e Entry) error { lastStart = e.LSN; return nil }); err != nil {
			t.Fatal(err)
		}
		r0.Close()
		newSize := fi.Size() - (int64(end-lastStart) - cut)
		if err := os.Truncate(path, newSize); err != nil {
			t.Fatal(err)
		}

		r, err := OpenReader(path)
		if err != nil {
			t.Fatalf("cut %d: OpenReader: %v", cut, err)
		}
		got, terminal, err := r.ScanTail(r.Base(), nil)
		if err != nil {
			t.Fatalf("cut %d: ScanTail error: %v", cut, err)
		}
		if !errors.Is(terminal, ErrTruncated) {
			t.Fatalf("cut %d: terminal = %v, want ErrTruncated", cut, terminal)
		}
		if got != lastStart {
			t.Fatalf("cut %d: intact prefix ends at %d, want %d", cut, got, lastStart)
		}
		r.Close()
	}
}

// TestScanTailCorrupt: a complete final frame with a flipped payload byte
// must be classified ErrCorrupt, not truncation.
func TestScanTailCorrupt(t *testing.T) {
	path, end := buildLog(t, 5)
	r0, err := OpenReader(path)
	if err != nil {
		t.Fatal(err)
	}
	var lastStart LSN
	if err := r0.Scan(r0.Base(), func(e Entry) error { lastStart = e.LSN; return nil }); err != nil {
		t.Fatal(err)
	}
	off := r0.FileOffset(lastStart) + headerSize // first payload byte
	r0.Close()

	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xFF
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	f.Close()

	r, err := OpenReader(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got, terminal, err := r.ScanTail(r.Base(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(terminal, ErrCorrupt) || errors.Is(terminal, ErrTruncated) {
		t.Fatalf("terminal = %v, want ErrCorrupt (and not ErrTruncated)", terminal)
	}
	if got != lastStart {
		t.Fatalf("intact prefix ends at %d, want %d", got, lastStart)
	}
	_ = end
}

// TestScanTailCleanEOF: an undamaged log terminates with io.EOF at its
// exact end.
func TestScanTailCleanEOF(t *testing.T) {
	path, end := buildLog(t, 3)
	r, err := OpenReader(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got, terminal, err := r.ScanTail(r.Base(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(terminal, io.EOF) {
		t.Fatalf("terminal = %v, want io.EOF", terminal)
	}
	if got != end {
		t.Fatalf("end = %d, want %d", got, end)
	}
}

// TestOpenReaderTornHeader is the regression test for the genesis-crash
// bug: a file shorter than its header (the very first write torn) used to
// surface as an untyped read error. It must be ErrBadHeader so recovery
// can treat the log as empty when no checkpoint references it.
func TestOpenReaderTornHeader(t *testing.T) {
	for _, size := range []int64{1, 8, fileHeaderSize - 1} {
		path := filepath.Join(t.TempDir(), "redo.log")
		full := encodeHeader(0)
		if err := os.WriteFile(path, full[:size], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenReader(path); !errors.Is(err, ErrBadHeader) {
			t.Fatalf("size %d: OpenReader = %v, want ErrBadHeader", size, err)
		}
	}
	// A corrupted full-size header is also ErrBadHeader.
	path := filepath.Join(t.TempDir(), "redo.log")
	h := encodeHeader(0)
	h[3] ^= 0x5A
	if err := os.WriteFile(path, h, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenReader(path); !errors.Is(err, ErrBadHeader) {
		t.Fatalf("corrupt header: OpenReader = %v, want ErrBadHeader", err)
	}
}

// TestScanBackwardPastEnd is the regression test for the raw-io.EOF leak:
// a backward scan started past the physical end of the file used to
// return bare io.EOF (which callers interpret as a clean stop). It must
// be a typed corruption error.
func TestScanBackwardPastEnd(t *testing.T) {
	path, end := buildLog(t, 2)
	r, err := OpenReader(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	err = r.ScanBackward(end+100, func(Entry) error { return nil })
	if err == nil || errors.Is(err, io.EOF) {
		t.Fatalf("ScanBackward past end = %v, want a typed error, not io.EOF/nil", err)
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("ScanBackward past end = %v, want ErrCorrupt", err)
	}
}
