package wal

import (
	"path/filepath"
	"testing"
)

func benchLog(b *testing.B, opts Options) *Log {
	b.Helper()
	l, err := Open(filepath.Join(b.TempDir(), "bench.log"), opts)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { l.Close() })
	return l
}

// BenchmarkAppend measures pure in-memory tail appends (the transaction
// path's log cost under asynchronous commit).
func BenchmarkAppend(b *testing.B) {
	l := benchLog(b, Options{})
	rec := &Record{Type: TypeUpdate, TxnID: 1, RecordID: 42, Data: make([]byte, 128)}
	b.SetBytes(int64(headerSize + trailerSize + encodedPayloadLen(rec)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := l.Append(rec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAppendWaitDurable measures the synchronous-commit path: append
// plus an inline flush to the file.
func BenchmarkAppendWaitDurable(b *testing.B) {
	l := benchLog(b, Options{})
	rec := &Record{Type: TypeCommit, TxnID: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, end, err := l.Append(rec)
		if err != nil {
			b.Fatal(err)
		}
		if err := l.WaitDurable(end); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScan measures forward recovery scanning.
func BenchmarkScan(b *testing.B) {
	path := filepath.Join(b.TempDir(), "scan.log")
	l, err := Open(path, Options{})
	if err != nil {
		b.Fatal(err)
	}
	rec := &Record{Type: TypeUpdate, TxnID: 1, RecordID: 7, Data: make([]byte, 128)}
	const records = 5000
	for i := 0; i < records; i++ {
		if _, _, err := l.Append(rec); err != nil {
			b.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		b.Fatal(err)
	}
	r, err := OpenReader(path)
	if err != nil {
		b.Fatal(err)
	}
	defer r.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		if err := r.Scan(0, func(Entry) error { n++; return nil }); err != nil {
			b.Fatal(err)
		}
		if n != records {
			b.Fatalf("scanned %d", n)
		}
	}
	b.ReportMetric(float64(records), "records/scan")
}

// BenchmarkCompact measures a head compaction of a half-dead log.
func BenchmarkCompact(b *testing.B) {
	rec := &Record{Type: TypeUpdate, TxnID: 1, RecordID: 7, Data: make([]byte, 128)}
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		l := benchLog(b, Options{})
		var mid LSN
		for j := 0; j < 2000; j++ {
			start, _, err := l.Append(rec)
			if err != nil {
				b.Fatal(err)
			}
			if j == 1000 {
				mid = start
			}
		}
		b.StartTimer()
		if _, err := l.Compact(mid); err != nil {
			b.Fatal(err)
		}
	}
}
