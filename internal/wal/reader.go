package wal

import (
	"errors"
	"fmt"
	"io"
	"os"
)

// Reader scans a closed log file. It supports the two access patterns of
// the paper's recovery procedure (Section 3.3): a backward scan to locate
// the most recent begin-checkpoint marker, and a forward scan that replays
// redo records.
type Reader struct {
	f    *os.File
	base LSN // LSN at file offset fileHeaderSize
	end  LSN // LSN just past the last byte in the file
}

// ErrCompacted reports an attempt to read records that head compaction
// has dropped from the log file.
var ErrCompacted = errors.New("wal: requested LSN predates the compacted log head")

// ErrTruncated reports a record frame cut off by the end of the file: the
// signature of a torn tail, where a crash lost the unsynced suffix of an
// append. It is distinct from ErrCorrupt (a complete frame whose checksum
// or framing is wrong); recovery treats both as the end of the usable log,
// but diagnostics and tests need to tell them apart.
var ErrTruncated = errors.New("wal: record truncated at end of log")

// OpenReader opens the log file at path for scanning.
func OpenReader(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("wal: open reader: %w", err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: stat reader: %w", err)
	}
	r := &Reader{f: f}
	if fi.Size() == 0 {
		// A log that was never opened for writing: empty, base 0.
		return r, nil
	}
	hdr := make([]byte, fileHeaderSize)
	if _, err := f.ReadAt(hdr, 0); err != nil {
		f.Close()
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			// The file is shorter than a header: a crash tore the very
			// first write to a fresh log.
			return nil, fmt.Errorf("%w: file shorter than header", ErrBadHeader)
		}
		return nil, fmt.Errorf("wal: read header: %w", err)
	}
	base, err := decodeHeader(hdr)
	if err != nil {
		f.Close()
		return nil, err
	}
	r.base = base
	r.end = base
	if fi.Size() > fileHeaderSize {
		r.end = base + LSN(fi.Size()-fileHeaderSize)
	}
	return r, nil
}

// Close releases the reader.
func (r *Reader) Close() error { return r.f.Close() }

// Size returns the end LSN of the durable log.
func (r *Reader) Size() LSN { return r.end }

// Base returns the oldest LSN present in the file.
func (r *Reader) Base() LSN { return r.base }

// FileOffset translates an LSN into a byte offset in the log file (used
// by recovery to truncate a torn tail).
func (r *Reader) FileOffset(lsn LSN) int64 {
	return fileHeaderSize + int64(lsn-r.base)
}

// SectionReader returns a reader over the raw log bytes [from, to),
// used for archiving an intact log suffix.
func (r *Reader) SectionReader(from, to LSN) (*io.SectionReader, error) {
	if from < r.base {
		return nil, fmt.Errorf("%w: from %d < base %d", ErrCompacted, from, r.base)
	}
	if to < from || to > r.end {
		return nil, fmt.Errorf("wal: section [%d,%d) outside log [%d,%d)", from, to, r.base, r.end)
	}
	return io.NewSectionReader(r.f, r.FileOffset(from), int64(to-from)), nil
}

// readAt reads and decodes the record starting at lsn. It returns the
// record and the LSN of the following record.
func (r *Reader) readAt(lsn LSN) (*Record, LSN, error) {
	if lsn < r.base {
		return nil, 0, fmt.Errorf("%w: lsn %d < base %d", ErrCompacted, lsn, r.base)
	}
	if lsn >= r.end {
		return nil, 0, io.EOF
	}
	var hdr [headerSize]byte
	if _, err := r.f.ReadAt(hdr[:], r.FileOffset(lsn)); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			// Fewer than headerSize bytes remain: the frame was cut off
			// mid-header by a torn tail.
			return nil, 0, ErrTruncated
		}
		return nil, 0, err
	}
	plen := int(uint32(hdr[0]) | uint32(hdr[1])<<8 | uint32(hdr[2])<<16 | uint32(hdr[3])<<24)
	if plen <= 0 || plen > MaxPayload {
		return nil, 0, ErrCorrupt
	}
	total := headerSize + plen + trailerSize
	if lsn+LSN(total) > r.end {
		// The header is plausible but the frame runs past the end of the
		// file: the tail of the record was lost, not scribbled on.
		return nil, 0, ErrTruncated
	}
	buf := make([]byte, total)
	if _, err := r.f.ReadAt(buf, r.FileOffset(lsn)); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, 0, ErrTruncated
		}
		return nil, 0, err
	}
	rec, n, err := decodeFrom(buf)
	if err != nil {
		return nil, 0, err
	}
	return rec, lsn + LSN(n), nil
}

// Entry pairs a decoded record with its position in the log.
type Entry struct {
	LSN  LSN
	Next LSN
	Rec  *Record
}

// Scan invokes fn for each valid record from start in log order. Scanning
// stops at the first torn or corrupt record (the tail lost in a crash) or
// at end of file; neither is an error. fn may stop the scan early by
// returning a non-nil error, which Scan returns unchanged.
func (r *Reader) Scan(start LSN, fn func(Entry) error) error {
	_, _, err := r.ScanTail(start, fn) //nolint:errcheckwal // the discarded terminal reason is a classification, not an error; err is returned
	return err
}

// ScanTail is Scan, but additionally reports where the intact prefix ends
// and why: io.EOF when the file ends cleanly on a record boundary,
// ErrTruncated when the last frame was cut off (a torn tail), ErrCorrupt
// when a complete frame fails its checksum or framing. The terminal reason
// is a classification, not a failure — the returned error is nil unless fn
// aborted the scan or a read failed outright.
func (r *Reader) ScanTail(start LSN, fn func(Entry) error) (end LSN, terminal error, err error) {
	lsn := start
	for {
		rec, next, rerr := r.readAt(lsn)
		switch {
		case rerr == nil:
		case errors.Is(rerr, io.EOF), errors.Is(rerr, ErrTruncated), errors.Is(rerr, ErrCorrupt):
			return lsn, rerr, nil
		default:
			return lsn, rerr, rerr
		}
		if fn != nil {
			if ferr := fn(Entry{LSN: lsn, Next: next, Rec: rec}); ferr != nil {
				return lsn, nil, ferr
			}
		}
		lsn = next
	}
}

// readBackFrom decodes the record that ends exactly at end, using the
// trailing length copy in the frame.
func (r *Reader) readBackFrom(end LSN) (Entry, error) {
	if end < r.base+headerSize+trailerSize {
		return Entry{}, ErrCorrupt
	}
	var tb [trailerSize]byte
	if _, err := r.f.ReadAt(tb[:], r.FileOffset(end)-trailerSize); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			// Backward scans must run over the intact prefix; a read past
			// the file end means the caller's end LSN was bad.
			return Entry{}, fmt.Errorf("%w: backward read past end of file", ErrCorrupt)
		}
		return Entry{}, err
	}
	plen := int(uint32(tb[0]) | uint32(tb[1])<<8 | uint32(tb[2])<<16 | uint32(tb[3])<<24)
	if plen <= 0 || plen > MaxPayload {
		return Entry{}, ErrCorrupt
	}
	total := LSN(headerSize + plen + trailerSize)
	if end < r.base+total {
		return Entry{}, ErrCorrupt
	}
	start := end - total
	rec, next, err := r.readAt(start)
	if err != nil {
		return Entry{}, err
	}
	if next != end {
		return Entry{}, ErrCorrupt
	}
	return Entry{LSN: start, Next: end, Rec: rec}, nil
}

// ScanBackward invokes fn for each valid record strictly before end, in
// reverse log order, starting with the record that ends at end. The log
// must be intact over the scanned range (backward scans run over the
// durable prefix located by ValidEnd). fn stops the scan by returning a
// non-nil error, which is returned unchanged.
func (r *Reader) ScanBackward(end LSN, fn func(Entry) error) error {
	at := end
	for at > r.base {
		e, err := r.readBackFrom(at)
		if err != nil {
			return err
		}
		if err := fn(e); err != nil {
			return err
		}
		at = e.LSN
	}
	return nil
}

// ValidEnd scans forward from start and returns the LSN just past the last
// valid record — the end of the intact log prefix. Recovery uses it to
// bound the backward scan and to position the re-opened log for appends.
func (r *Reader) ValidEnd(start LSN) (LSN, error) {
	end := start
	err := r.Scan(start, func(e Entry) error {
		end = e.Next
		return nil
	})
	return end, err
}

// CheckpointMarker describes a begin-checkpoint record found in the log.
type CheckpointMarker struct {
	LSN          LSN
	CheckpointID uint64
	Timestamp    uint64
	TargetCopy   uint8
	Algorithm    uint8
	ActiveTxns   []ActiveTxn
	// ScanStart is the LSN at which a forward redo scan must begin: the
	// marker itself, or the first LSN of the oldest transaction that was
	// active when the checkpoint began, whichever is smaller.
	ScanStart LSN
}

// scanStart computes the redo scan start for a marker entry.
func scanStart(e Entry) LSN {
	s := e.LSN
	for _, at := range e.Rec.ActiveTxns {
		if at.FirstLSN != NilLSN && at.FirstLSN < s {
			s = at.FirstLSN
		}
	}
	return s
}

// FindCheckpoint scans backward from end for the begin-checkpoint marker
// of the checkpoint with the given ID. This implements the paper's
// backward scan: "the log must be scanned backwards until the
// begin-checkpoint marker of the most recently completed checkpoint is
// found". The ID of that checkpoint comes from the backup metadata (or
// from end-checkpoint markers; see FindLastCompleted).
func (r *Reader) FindCheckpoint(end LSN, checkpointID uint64) (*CheckpointMarker, error) {
	var found *CheckpointMarker
	stop := errors.New("stop")
	err := r.ScanBackward(end, func(e Entry) error {
		if e.Rec.Type == TypeBeginCheckpoint && e.Rec.CheckpointID == checkpointID {
			found = &CheckpointMarker{
				LSN:          e.LSN,
				CheckpointID: e.Rec.CheckpointID,
				Timestamp:    e.Rec.Timestamp,
				TargetCopy:   e.Rec.TargetCopy,
				Algorithm:    e.Rec.Algorithm,
				ActiveTxns:   e.Rec.ActiveTxns,
				ScanStart:    scanStart(e),
			}
			return stop
		}
		return nil
	})
	if err != nil && !errors.Is(err, stop) {
		return nil, err
	}
	if found == nil {
		return nil, fmt.Errorf("wal: begin-checkpoint marker for checkpoint %d not found", checkpointID)
	}
	return found, nil
}

// FindLastCompleted scans backward from end for the most recent checkpoint
// that has both its end-checkpoint and begin-checkpoint markers in the
// log. It implements the paper's alternative to explicit backup metadata:
// "placing explicit end-checkpoint markers in the log during normal
// operation".
func (r *Reader) FindLastCompleted(end LSN) (*CheckpointMarker, error) {
	var found *CheckpointMarker
	completed := make(map[uint64]bool)
	stop := errors.New("stop")
	err := r.ScanBackward(end, func(e Entry) error {
		switch e.Rec.Type {
		case TypeEndCheckpoint:
			completed[e.Rec.CheckpointID] = true
		case TypeBeginCheckpoint:
			if completed[e.Rec.CheckpointID] {
				found = &CheckpointMarker{
					LSN:          e.LSN,
					CheckpointID: e.Rec.CheckpointID,
					Timestamp:    e.Rec.Timestamp,
					TargetCopy:   e.Rec.TargetCopy,
					Algorithm:    e.Rec.Algorithm,
					ActiveTxns:   e.Rec.ActiveTxns,
					ScanStart:    scanStart(e),
				}
				return stop
			}
		}
		return nil
	})
	if err != nil && !errors.Is(err, stop) {
		return nil, err
	}
	if found == nil {
		return nil, errors.New("wal: no completed checkpoint in log")
	}
	return found, nil
}
