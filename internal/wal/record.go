// Package wal implements the redo-only transaction log of the paper's
// MMDBMS (Sections 2.6 and 3.1 of Salem & Garcia-Molina, "Checkpointing
// Memory-Resident Databases").
//
// The log is an append-only sequence of records addressed by log sequence
// numbers (LSNs). Transactions write redo (after-image) records as they
// update and a commit record when they finish; the checkpointer writes
// begin-checkpoint markers carrying the list of active transactions, and
// end-checkpoint markers. The in-memory log tail is either volatile
// (records become durable when the tail is flushed to the log disk) or
// stable (the paper's "stable log tail": enough stable RAM to hold the
// unflushed tail, which makes every append immediately durable and enables
// the FASTFUZZY checkpoint).
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// LSN is a log sequence number: the byte offset of a record in the log
// file. LSNs increase monotonically with log order.
type LSN uint64

// NilLSN marks "no LSN" (e.g., a transaction that has logged nothing yet).
const NilLSN LSN = ^LSN(0)

// RecordType identifies the kind of a log record.
type RecordType uint8

// Log record types.
const (
	// TypeUpdate is a redo record: the after-image of one database record
	// written by a transaction. Emitted at update time, before commit.
	TypeUpdate RecordType = iota + 1
	// TypeCommit terminates a committed transaction. Redo-only logging:
	// only transactions with a commit record are replayed at recovery.
	TypeCommit
	// TypeAbort terminates an aborted transaction (including transactions
	// restarted for violating the two-color constraint). Its redo records
	// are dead weight in the log — the "added log bulk" of Section 3.3.
	TypeAbort
	// TypeBeginCheckpoint marks the start of a checkpoint and carries the
	// checkpoint's ID, timestamp, target ping-pong copy, and the list of
	// transactions active at that instant together with their first LSNs.
	TypeBeginCheckpoint
	// TypeEndCheckpoint marks the successful completion of a checkpoint.
	TypeEndCheckpoint
	// TypeLogicalUpdate is a logical (operation) redo record: an operation
	// code plus operand to re-apply to a record, instead of its after
	// image. The paper notes that consistent backups "permit the use of
	// logical logging" (Section 3.2) — operation replay is not idempotent,
	// so it is only sound against a backup that is an exact state at a
	// known log position, which copy-on-update checkpoints provide.
	TypeLogicalUpdate
)

// String implements fmt.Stringer.
func (t RecordType) String() string {
	switch t {
	case TypeUpdate:
		return "update"
	case TypeCommit:
		return "commit"
	case TypeAbort:
		return "abort"
	case TypeBeginCheckpoint:
		return "begin-checkpoint"
	case TypeEndCheckpoint:
		return "end-checkpoint"
	case TypeLogicalUpdate:
		return "logical-update"
	default:
		return fmt.Sprintf("wal.RecordType(%d)", uint8(t))
	}
}

// ActiveTxn describes one transaction that was in flight when a checkpoint
// began: its ID and the LSN of its first logged update. The recovery
// manager must start its forward scan no later than the smallest such LSN
// (Section 3.3: for fuzzy checkpoints the backward scan continues to the
// beginning of the earliest active transaction).
type ActiveTxn struct {
	TxnID    uint64
	FirstLSN LSN
}

// Record is a decoded log record. Fields are populated according to Type.
type Record struct {
	Type RecordType

	// TxnID identifies the transaction for update/commit/abort records.
	TxnID uint64

	// RecordID and Data are the redo payload of an update record. For
	// logical updates Data is the operand and OpCode the operation.
	RecordID uint64
	Data     []byte
	OpCode   uint16

	// Checkpoint marker fields.
	CheckpointID uint64
	Timestamp    uint64
	TargetCopy   uint8
	Algorithm    uint8
	ActiveTxns   []ActiveTxn
}

// Record wire format:
//
//	[payloadLen u32][crc32(payload) u32][payload][payloadLen u32]
//
// The trailing length copy permits backward scans (used to locate the most
// recent begin-checkpoint marker, as the paper's recovery procedure
// describes). The record's LSN is the offset of its first byte; the header
// and trailer add headerSize+trailerSize bytes of framing.
const (
	headerSize  = 8
	trailerSize = 4
	// MaxPayload bounds a single record; segments are the largest payloads
	// and are far below this.
	MaxPayload = 1 << 28
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports a record that failed checksum or framing validation.
// During recovery this marks the torn tail of the log: scanning stops.
var ErrCorrupt = errors.New("wal: corrupt or torn log record")

// encodedPayloadLen returns the payload size of r.
func encodedPayloadLen(r *Record) int {
	switch r.Type {
	case TypeUpdate:
		return 1 + 8 + 8 + 4 + len(r.Data)
	case TypeLogicalUpdate:
		return 1 + 8 + 8 + 2 + 4 + len(r.Data)
	case TypeCommit, TypeAbort:
		return 1 + 8
	case TypeBeginCheckpoint:
		return 1 + 8 + 8 + 1 + 1 + 4 + len(r.ActiveTxns)*16
	case TypeEndCheckpoint:
		return 1 + 8 + 1
	default:
		return -1
	}
}

// EncodedLen returns the total on-log size of r including framing, or an
// error for an unknown type.
func EncodedLen(r *Record) (int, error) {
	n := encodedPayloadLen(r)
	if n < 0 {
		return 0, fmt.Errorf("wal: cannot encode record of type %v", r.Type)
	}
	return headerSize + n + trailerSize, nil
}

// encodeInto writes the framed encoding of r into dst, which must be at
// least EncodedLen(r) bytes long, and returns the number of bytes
// written. It is a vectored encode: every field lands at a computed
// offset, nothing is appended, so a caller that sizes the buffer up
// front (the Log keeps a preallocated tail) encodes with zero heap
// allocation. r is only read and never retained, which the lint/escape
// parameter-leak facts prove, keeping callers' Record literals on their
// stacks.
func encodeInto(dst []byte, r *Record) (int, error) {
	plen := encodedPayloadLen(r)
	if plen < 0 {
		return 0, fmt.Errorf("wal: cannot encode record of type %v", r.Type)
	}
	if plen > MaxPayload {
		return 0, fmt.Errorf("wal: record payload %d exceeds limit %d", plen, MaxPayload)
	}
	total := headerSize + plen + trailerSize
	if len(dst) < total {
		return 0, fmt.Errorf("wal: encode buffer %d short of record size %d", len(dst), total)
	}
	binary.LittleEndian.PutUint32(dst, uint32(plen))
	p := dst[headerSize : headerSize+plen]
	p[0] = byte(r.Type)
	switch r.Type {
	case TypeUpdate:
		binary.LittleEndian.PutUint64(p[1:], r.TxnID)
		binary.LittleEndian.PutUint64(p[9:], r.RecordID)
		binary.LittleEndian.PutUint32(p[17:], uint32(len(r.Data)))
		copy(p[21:], r.Data)
	case TypeLogicalUpdate:
		binary.LittleEndian.PutUint64(p[1:], r.TxnID)
		binary.LittleEndian.PutUint64(p[9:], r.RecordID)
		binary.LittleEndian.PutUint16(p[17:], r.OpCode)
		binary.LittleEndian.PutUint32(p[19:], uint32(len(r.Data)))
		copy(p[23:], r.Data)
	case TypeCommit, TypeAbort:
		binary.LittleEndian.PutUint64(p[1:], r.TxnID)
	case TypeBeginCheckpoint:
		binary.LittleEndian.PutUint64(p[1:], r.CheckpointID)
		binary.LittleEndian.PutUint64(p[9:], r.Timestamp)
		p[17] = r.TargetCopy
		p[18] = r.Algorithm
		binary.LittleEndian.PutUint32(p[19:], uint32(len(r.ActiveTxns)))
		for i := range r.ActiveTxns {
			binary.LittleEndian.PutUint64(p[23+i*16:], r.ActiveTxns[i].TxnID)
			binary.LittleEndian.PutUint64(p[31+i*16:], uint64(r.ActiveTxns[i].FirstLSN))
		}
	case TypeEndCheckpoint:
		binary.LittleEndian.PutUint64(p[1:], r.CheckpointID)
		p[9] = r.TargetCopy
	}
	binary.LittleEndian.PutUint32(dst[4:], crc32.Checksum(p, crcTable))
	binary.LittleEndian.PutUint32(dst[headerSize+plen:], uint32(plen))
	return total, nil
}

// appendEncoded appends the framed encoding of r to dst and returns the
// extended slice. Callers off the hot path (tests, tools) use it; the
// Log's append path encodes with encodeInto into its preallocated tail.
func appendEncoded(dst []byte, r *Record) ([]byte, error) {
	n, err := EncodedLen(r)
	if err != nil {
		return dst, err
	}
	off := len(dst)
	if cap(dst)-off < n {
		grown := make([]byte, off, off+n)
		copy(grown, dst)
		dst = grown
	}
	dst = dst[:off+n]
	if _, err := encodeInto(dst[off:], r); err != nil {
		return dst[:off], err
	}
	return dst, nil
}

// decodePayload decodes a verified payload into r.
func decodePayload(payload []byte, r *Record) error {
	if len(payload) < 1 {
		return ErrCorrupt
	}
	r.Type = RecordType(payload[0])
	b := payload[1:]
	need := func(n int) bool { return len(b) >= n }
	switch r.Type {
	case TypeUpdate:
		if !need(20) {
			return ErrCorrupt
		}
		r.TxnID = binary.LittleEndian.Uint64(b)
		r.RecordID = binary.LittleEndian.Uint64(b[8:])
		dlen := int(binary.LittleEndian.Uint32(b[16:]))
		b = b[20:]
		if len(b) != dlen {
			return ErrCorrupt
		}
		r.Data = append([]byte(nil), b...)
	case TypeLogicalUpdate:
		if !need(22) {
			return ErrCorrupt
		}
		r.TxnID = binary.LittleEndian.Uint64(b)
		r.RecordID = binary.LittleEndian.Uint64(b[8:])
		r.OpCode = binary.LittleEndian.Uint16(b[16:])
		dlen := int(binary.LittleEndian.Uint32(b[18:]))
		b = b[22:]
		if len(b) != dlen {
			return ErrCorrupt
		}
		r.Data = append([]byte(nil), b...)
	case TypeCommit, TypeAbort:
		if !need(8) {
			return ErrCorrupt
		}
		r.TxnID = binary.LittleEndian.Uint64(b)
	case TypeBeginCheckpoint:
		if !need(22) {
			return ErrCorrupt
		}
		r.CheckpointID = binary.LittleEndian.Uint64(b)
		r.Timestamp = binary.LittleEndian.Uint64(b[8:])
		r.TargetCopy = b[16]
		r.Algorithm = b[17]
		n := int(binary.LittleEndian.Uint32(b[18:]))
		b = b[22:]
		if len(b) != n*16 {
			return ErrCorrupt
		}
		r.ActiveTxns = make([]ActiveTxn, n)
		for i := 0; i < n; i++ {
			r.ActiveTxns[i].TxnID = binary.LittleEndian.Uint64(b[i*16:])
			r.ActiveTxns[i].FirstLSN = LSN(binary.LittleEndian.Uint64(b[i*16+8:]))
		}
	case TypeEndCheckpoint:
		if !need(9) {
			return ErrCorrupt
		}
		r.CheckpointID = binary.LittleEndian.Uint64(b)
		r.TargetCopy = b[8]
	default:
		return ErrCorrupt
	}
	return nil
}

// decodeFrom decodes the record starting at buf[0] and returns the record
// and its total framed length. buf may extend past the record.
func decodeFrom(buf []byte) (*Record, int, error) {
	if len(buf) < headerSize {
		return nil, 0, ErrCorrupt
	}
	plen := int(binary.LittleEndian.Uint32(buf))
	if plen <= 0 || plen > MaxPayload {
		return nil, 0, ErrCorrupt
	}
	total := headerSize + plen + trailerSize
	if len(buf) < total {
		return nil, 0, ErrCorrupt
	}
	wantCRC := binary.LittleEndian.Uint32(buf[4:])
	payload := buf[headerSize : headerSize+plen]
	if crc32.Checksum(payload, crcTable) != wantCRC {
		return nil, 0, ErrCorrupt
	}
	if tl := int(binary.LittleEndian.Uint32(buf[headerSize+plen:])); tl != plen {
		return nil, 0, ErrCorrupt
	}
	r := new(Record)
	if err := decodePayload(payload, r); err != nil {
		return nil, 0, err
	}
	return r, total, nil
}
