package wal

// Typed LSN helpers. Outside this package, LSNs must be compared and
// advanced through these (enforced by the lsncheck analyzer; see
// lint/lsncheck): NilLSN is ^LSN(0), so raw ordered comparison silently
// sorts "no LSN" after every real log position and raw arithmetic can
// wrap it. Equality against NilLSN stays idiomatic with == / !=.

// IsNil reports whether l is the "no LSN" sentinel.
func (l LSN) IsNil() bool { return l == NilLSN }

// Before reports whether l is strictly earlier in the log than o.
// NilLSN is not earlier than anything.
func (l LSN) Before(o LSN) bool { return !l.IsNil() && l < o }

// AtOrAfter reports whether l is at or past o in the log.
func (l LSN) AtOrAfter(o LSN) bool { return !l.IsNil() && l >= o }

// Advance returns the LSN n bytes past l. Advancing NilLSN is invalid
// and returns NilLSN unchanged.
func (l LSN) Advance(n int) LSN {
	if l.IsNil() {
		return l
	}
	return l + LSN(n)
}

// Sub returns the byte distance from o to l (l - o). Both must be real
// LSNs; the result for NilLSN operands is unspecified.
func (l LSN) Sub(o LSN) int64 { return int64(l) - int64(o) }

// MaxLSN returns the later of a and b, treating NilLSN as "unset": the
// maximum of a real LSN and NilLSN is the real one. This is the
// watermark-update helper (e.g. a segment's LastLSN).
func MaxLSN(a, b LSN) LSN {
	switch {
	case a.IsNil():
		return b
	case b.IsNil():
		return a
	case a < b:
		return b
	default:
		return a
	}
}

// MinLSN returns the earlier of a and b. NilLSN, being the largest
// encoding, naturally acts as +infinity: the minimum of a real LSN and
// NilLSN is the real one. This is the scan-start / compaction-keep
// helper.
func MinLSN(a, b LSN) LSN {
	if a < b {
		return a
	}
	return b
}
