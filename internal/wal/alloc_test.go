package wal

import (
	"path/filepath"
	"testing"

	"mmdb/internal/obs"
)

// TestAppendAllocationFree pins Log.Append at zero heap allocations per
// record once the preallocated tail is warm: encodeInto writes the
// header, payload, and trailer directly into the tail buffer, and
// periodic flushes reset the tail's length while keeping its capacity.
func TestAppendAllocationFree(t *testing.T) {
	l, err := Open(filepath.Join(t.TempDir(), "alloc.log"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	rec := &Record{Type: TypeUpdate, TxnID: 1, RecordID: 42, Data: make([]byte, 128)}
	flushEvery := 0
	appendOne := func() {
		if _, _, err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
		// Flush well before the default tail fills so the measured
		// steady state never needs tail growth — mirroring the engine's
		// group-commit cadence.
		if flushEvery++; flushEvery == 64 {
			flushEvery = 0
			if err := l.Flush(); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := 0; i < 128; i++ {
		appendOne()
	}
	allocs := testing.AllocsPerRun(1024, appendOne)
	if allocs != 0 {
		t.Errorf("Append: %v allocs/op, want 0", allocs)
	}
}

// TestAppendAllocationFreeTraced re-pins the zero-allocation contract
// with the full metrics hookup armed, including the commit-attribution
// histogram: the dual observation reuses a single pair of clock reads
// and both Observe calls are lock-free atomics.
func TestAppendAllocationFreeTraced(t *testing.T) {
	reg := obs.NewRegistry()
	m := &Metrics{
		AppendSeconds:       reg.Histogram("mmdb_wal_append_seconds", "", obs.ScaleNanosToSeconds),
		CommitAppendSeconds: reg.Histogram("mmdb_commit_attr_wal_append_seconds", "", obs.ScaleNanosToSeconds),
		FlushSeconds:        reg.Histogram("mmdb_wal_flush_seconds", "", obs.ScaleNanosToSeconds),
		FlushBatchBytes:     reg.Histogram("mmdb_wal_flush_batch_bytes", "", 1),
	}
	l, err := Open(filepath.Join(t.TempDir(), "alloc_traced.log"), Options{Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	upd := &Record{Type: TypeUpdate, TxnID: 1, RecordID: 42, Data: make([]byte, 128)}
	com := &Record{Type: TypeCommit, TxnID: 1}
	flushEvery := 0
	appendOne := func() {
		if _, _, err := l.Append(upd); err != nil {
			t.Fatal(err)
		}
		if _, _, err := l.Append(com); err != nil {
			t.Fatal(err)
		}
		if flushEvery++; flushEvery == 32 {
			flushEvery = 0
			if err := l.Flush(); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := 0; i < 128; i++ {
		appendOne()
	}
	allocs := testing.AllocsPerRun(1024, appendOne)
	if allocs != 0 {
		t.Errorf("Append with metrics: %v allocs/op, want 0", allocs)
	}
	if m.CommitAppendSeconds.Count() == 0 {
		t.Error("commit-attribution histogram observed nothing")
	}
	if m.AppendSeconds.Count() < 2*m.CommitAppendSeconds.Count() {
		t.Errorf("AppendSeconds count %d < 2× CommitAppendSeconds count %d; commit records must feed both",
			m.AppendSeconds.Count(), m.CommitAppendSeconds.Count())
	}
}
