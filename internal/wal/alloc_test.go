package wal

import (
	"path/filepath"
	"testing"
)

// TestAppendAllocationFree pins Log.Append at zero heap allocations per
// record once the preallocated tail is warm: encodeInto writes the
// header, payload, and trailer directly into the tail buffer, and
// periodic flushes reset the tail's length while keeping its capacity.
func TestAppendAllocationFree(t *testing.T) {
	l, err := Open(filepath.Join(t.TempDir(), "alloc.log"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	rec := &Record{Type: TypeUpdate, TxnID: 1, RecordID: 42, Data: make([]byte, 128)}
	flushEvery := 0
	appendOne := func() {
		if _, _, err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
		// Flush well before the default tail fills so the measured
		// steady state never needs tail growth — mirroring the engine's
		// group-commit cadence.
		if flushEvery++; flushEvery == 64 {
			flushEvery = 0
			if err := l.Flush(); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := 0; i < 128; i++ {
		appendOne()
	}
	allocs := testing.AllocsPerRun(1024, appendOne)
	if allocs != 0 {
		t.Errorf("Append: %v allocs/op, want 0", allocs)
	}
}
