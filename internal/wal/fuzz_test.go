package wal

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// fuzzSeedRecords is a small record mix covering every type, used to seed
// both fuzz corpora with realistic log bytes.
func fuzzSeedRecords() [][]byte {
	recs := []*Record{
		{Type: TypeUpdate, TxnID: 7, RecordID: 3, Data: []byte("after-image")},
		{Type: TypeCommit, TxnID: 7},
		{Type: TypeAbort, TxnID: 9},
		{Type: TypeLogicalUpdate, TxnID: 8, RecordID: 5, OpCode: 1, Data: []byte{1, 2, 3, 4, 5, 6, 7, 8}},
		{Type: TypeBeginCheckpoint, CheckpointID: 2, Timestamp: 40, TargetCopy: 1, Algorithm: 3,
			ActiveTxns: []ActiveTxn{{TxnID: 7, FirstLSN: 0}, {TxnID: 8, FirstLSN: 33}}},
		{Type: TypeEndCheckpoint, CheckpointID: 2, TargetCopy: 1},
	}
	var out [][]byte
	var chain []byte
	for _, r := range recs {
		one, err := appendEncoded(nil, r)
		if err != nil {
			panic(err)
		}
		out = append(out, one)
		chain, err = appendEncoded(chain, r)
		if err != nil {
			panic(err)
		}
	}
	out = append(out, chain)
	// Torn-write shapes: the chain cut mid-record and with a scribbled
	// tail byte, as the fault injector produces them.
	for _, cut := range []int{1, headerSize - 1, headerSize + 3, len(chain) - trailerSize, len(chain) - 1} {
		if cut > 0 && cut < len(chain) {
			out = append(out, chain[:cut])
		}
	}
	scribbled := append([]byte(nil), chain...)
	scribbled[len(scribbled)-7] ^= 0x80
	out = append(out, scribbled)
	return out
}

// FuzzReadRecord throws arbitrary bytes at the record decoder: it must
// never panic or allocate unboundedly, and on success the reported frame
// length must lie within the input.
func FuzzReadRecord(f *testing.F) {
	for _, seed := range fuzzSeedRecords() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, n, err := decodeFrom(data)
		if err != nil {
			if rec != nil {
				t.Fatal("decodeFrom returned a record alongside an error")
			}
			return
		}
		if rec == nil {
			t.Fatal("decodeFrom returned nil record with nil error")
		}
		if n < headerSize+trailerSize+1 || n > len(data) {
			t.Fatalf("decoded frame length %d outside (framing, len=%d]", n, len(data))
		}
		// A decoded record must re-encode; its payload survived a CRC
		// check, so the type and lengths are internally consistent.
		if _, err := appendEncoded(nil, rec); err != nil {
			t.Fatalf("re-encode of decoded record failed: %v", err)
		}
	})
}

// FuzzRecover treats the fuzz input as the full contents of a log file
// and drives the whole reader surface over it: opening, forward scans,
// backward scans, and checkpoint location must never panic and must fail
// only with typed errors.
func FuzzRecover(f *testing.F) {
	// Seeds: intact logs, torn tails, corrupted headers — header-prefixed
	// versions of the record corpus.
	hdr := encodeHeader(0)
	for _, body := range fuzzSeedRecords() {
		f.Add(append(append([]byte(nil), hdr...), body...))
	}
	f.Add([]byte{})
	f.Add(hdr[:5])
	badHdr := append([]byte(nil), hdr...)
	badHdr[2] ^= 1
	f.Add(badHdr)

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "redo.log")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		r, err := OpenReader(path)
		if err != nil {
			if !errors.Is(err, ErrBadHeader) {
				t.Fatalf("OpenReader failed with untyped error: %v", err)
			}
			return
		}
		defer r.Close()

		end, terminal, err := r.ScanTail(r.Base(), func(e Entry) error {
			if e.Rec == nil || e.Next <= e.LSN {
				t.Fatalf("bad entry: rec=%v span [%d,%d)", e.Rec, e.LSN, e.Next)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("ScanTail error: %v", err)
		}
		switch {
		case errors.Is(terminal, io.EOF), errors.Is(terminal, ErrTruncated), errors.Is(terminal, ErrCorrupt):
		default:
			t.Fatalf("untyped terminal reason: %v", terminal)
		}
		if end < r.Base() || end > r.Size() {
			t.Fatalf("intact end %d outside [%d,%d]", end, r.Base(), r.Size())
		}

		// The intact prefix must support a full backward scan.
		if err := r.ScanBackward(end, func(Entry) error { return nil }); err != nil {
			t.Fatalf("ScanBackward over intact prefix [%d,%d): %v", r.Base(), end, err)
		}
		// Checkpoint location over the intact prefix: any error must be a
		// clean "not found" or typed corruption, never a panic.
		if _, err := r.FindLastCompleted(end); err != nil &&
			!errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrTruncated) &&
			err.Error() != "wal: no completed checkpoint in log" {
			t.Fatalf("FindLastCompleted: %v", err)
		}
	})
}
