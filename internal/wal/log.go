package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"mmdb/internal/faultfs"
	"mmdb/internal/obs"
)

// Log file header. LSNs are logical positions that survive head
// compaction: a record at LSN x lives at file offset
// fileHeaderSize + (x − base), where base is recorded in the header.
// Compact rewrites the file with a larger base, dropping the dead prefix
// that no recovery can need, without renumbering any LSN.
const (
	fileMagic      = "MMDBWAL1"
	fileHeaderSize = 24 // magic(8) + base(8) + crc(4) + reserved(4)
)

// encodeHeader builds a file header for the given base LSN.
func encodeHeader(base LSN) []byte {
	h := make([]byte, fileHeaderSize)
	copy(h, fileMagic)
	binary.LittleEndian.PutUint64(h[8:], uint64(base))
	binary.LittleEndian.PutUint32(h[16:], crc32.Checksum(h[:16], crcTable))
	return h
}

// ErrBadHeader reports a missing, short, or corrupt log file header. A
// header can only be damaged by a crash during the very first write to a
// fresh log, so recovery may treat this as an empty log when no
// checkpoint references the file.
var ErrBadHeader = errors.New("wal: bad log file header")

// decodeHeader validates a file header and returns its base LSN.
func decodeHeader(h []byte) (LSN, error) {
	if len(h) < fileHeaderSize || string(h[:8]) != fileMagic {
		return 0, ErrBadHeader
	}
	if crc32.Checksum(h[:16], crcTable) != binary.LittleEndian.Uint32(h[16:]) {
		return 0, fmt.Errorf("%w: checksum mismatch", ErrBadHeader)
	}
	return LSN(binary.LittleEndian.Uint64(h[8:])), nil
}

// Options configures a Log.
type Options struct {
	// StableTail simulates the paper's stable-RAM log tail (Section 4):
	// every append is durable immediately, so neither transactions nor the
	// checkpointer ever wait for a log flush. A crash preserves the tail.
	StableTail bool

	// SyncOnFlush issues an fsync after each flush. The in-process crash
	// simulation (Crash) does not require it for correctness — durability
	// is defined by the flushed watermark — but a production deployment
	// would enable it.
	SyncOnFlush bool

	// FlushInterval, when positive, starts a background group-commit
	// flusher that flushes the tail at this period. Zero leaves flushing
	// to explicit Flush/WaitDurable calls.
	FlushInterval time.Duration

	// TailBytes is the initial capacity of the in-memory log tail.
	// Appends encode into this buffer in place; it grows (doubling) only
	// when a burst of unflushed records outruns it, so sizing it for the
	// expected group-commit batch makes Append allocation-free. Zero
	// means DefaultTailBytes.
	TailBytes int

	// FS is the filesystem the log writes through. Nil means the OS
	// directly; tests inject a faultfs.Injector here.
	FS faultfs.FS

	// Metrics optionally instruments the log. Nil disables the timing
	// entirely (no clock reads on the append/flush paths).
	Metrics *Metrics
}

// Metrics is the log's observability hookup: histogram handles owned by
// the caller's registry. Any field may be nil (obs histograms are
// nil-safe); a nil handle skips that recording.
type Metrics struct {
	// AppendSeconds is the Append latency (encode into the tail).
	AppendSeconds *obs.Histogram
	// CommitAppendSeconds additionally receives the append latency of
	// commit records only — the WAL share of commit-latency attribution.
	// It reuses AppendSeconds' clock reads, so enabling it costs nothing
	// on the append path.
	CommitAppendSeconds *obs.Histogram
	// FlushSeconds is the flush latency (tail write plus optional sync).
	FlushSeconds *obs.Histogram
	// FlushBatchBytes is the bytes written per flush — the group-commit
	// batch size.
	FlushBatchBytes *obs.Histogram
}

// Log is an append-only redo log backed by a single file.
//
// Appends accumulate in an in-memory tail and become durable when the tail
// is flushed (or immediately, with a stable tail). The durable watermark is
// an LSN: every record that ends at or before the watermark survives a
// crash. The watermark is what the checkpointer's log-sequence-number
// checks compare against to preserve the write-ahead rule: a segment image
// may be written to the backup database only when the log is durable past
// the segment's last update.
type Log struct {
	mu sync.Mutex // lockorder:level=50
	// f is the log file handle. guarded_by:mu
	f    faultfs.File
	fsys faultfs.FS
	path string
	opts Options
	// base is the LSN at file offset fileHeaderSize (head compaction).
	// guarded_by:mu
	base LSN
	// tail holds appended but unflushed bytes. guarded_by:mu
	tail []byte
	// tailStart is the LSN of tail[0]. guarded_by:mu
	tailStart LSN
	// nextLSN is the LSN of the next append. guarded_by:mu
	nextLSN LSN
	flushed atomic.Uint64
	// closed and crashed record terminal states. guarded_by:mu
	closed bool
	// guarded_by:mu
	crashed bool

	flushCond *sync.Cond

	// stopFlusher and flusherDone control the group-commit goroutine.
	// guarded_by:mu
	stopFlusher chan struct{}
	// guarded_by:mu
	flusherDone chan struct{}

	// Stats counters (atomic; safe to read concurrently).
	appends      atomic.Uint64
	flushes      atomic.Uint64
	bytesFlushed atomic.Uint64
}

// ErrClosed is returned by operations on a closed or crashed log.
var ErrClosed = errors.New("wal: log is closed")

// DefaultTailBytes is the tail buffer capacity when Options.TailBytes
// is zero: room for a healthy group-commit batch without growth.
const DefaultTailBytes = 64 << 10

// Open creates or opens the log file at path for appending. An existing
// file is opened positioned at its end (recovery must have validated it
// first; see Reader).
func Open(path string, opts Options) (*Log, error) {
	fsys := faultfs.Or(opts.FS)
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open: %w", err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: stat: %w", err)
	}
	var base LSN
	if fi.Size() == 0 {
		if _, err := f.WriteAt(encodeHeader(0), 0); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: write header: %w", err)
		}
	} else {
		hdr := make([]byte, fileHeaderSize)
		if _, err := f.ReadAt(hdr, 0); err != nil {
			f.Close()
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return nil, fmt.Errorf("%w: file shorter than header", ErrBadHeader)
			}
			return nil, fmt.Errorf("wal: read header: %w", err)
		}
		base, err = decodeHeader(hdr)
		if err != nil {
			f.Close()
			return nil, err
		}
	}
	end := base
	if fi.Size() > fileHeaderSize {
		end = base + LSN(fi.Size()-fileHeaderSize)
	}
	tb := opts.TailBytes
	if tb <= 0 {
		tb = DefaultTailBytes
	}
	l := &Log{
		f:         f,
		fsys:      fsys,
		path:      path,
		opts:      opts,
		base:      base,
		tail:      make([]byte, 0, tb),
		tailStart: end,
		nextLSN:   end,
	}
	l.flushed.Store(uint64(end))
	l.flushCond = sync.NewCond(&l.mu)
	if opts.FlushInterval > 0 {
		stop := make(chan struct{})
		done := make(chan struct{})
		l.stopFlusher, l.flusherDone = stop, done //nolint:lockcheck // l is not shared until Open returns
		// goleak:joins Close receives on flusherDone after closing stopFlusher
		go l.flushLoop(stop, done)
	}
	return l, nil
}

func (l *Log) flushLoop(stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	t := time.NewTicker(l.opts.FlushInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			// Best effort: a failed background flush surfaces on the next
			// explicit Flush or WaitDurable.
			_ = l.Flush() //nolint:errcheckwal // see above
		case <-stop:
			return
		}
	}
}

// Append encodes r at the log tail and returns its start and end LSNs.
// The record is durable once DurableLSN() >= end.
//
// perf:hotpath(every transaction update and commit encodes through here)
//
// lockorder:acquires Log.mu
// lockorder:releases Log.mu
func (l *Log) Append(r *Record) (start, end LSN, err error) {
	n, err := EncodedLen(r)
	if err != nil {
		return 0, 0, err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, 0, ErrClosed
	}
	var began time.Time
	if m := l.opts.Metrics; m != nil && (m.AppendSeconds != nil || m.CommitAppendSeconds != nil) {
		began = time.Now()
	}
	start = l.nextLSN
	l.ensureTail(n)
	off := len(l.tail)
	l.tail = l.tail[:off+n]
	if _, err := encodeInto(l.tail[off:], r); err != nil {
		l.tail = l.tail[:off]
		return 0, 0, err
	}
	l.nextLSN = l.tailStart + LSN(len(l.tail))
	l.appends.Add(1)
	if !began.IsZero() {
		d := uint64(time.Since(began))
		l.opts.Metrics.AppendSeconds.Observe(d)
		if r.Type == TypeCommit {
			l.opts.Metrics.CommitAppendSeconds.Observe(d)
		}
	}
	return start, l.nextLSN, nil
}

// ensureTail grows the tail so at least n more bytes fit. The append
// path proper never allocates: growth is confined to this one site, hit
// only when a burst of unflushed records outruns the preallocated
// TailBytes buffer, and the doubled capacity is retained across flushes
// (flushLocked resets the length, not the capacity).
//
// lockcheck:held l.mu
func (l *Log) ensureTail(n int) {
	if cap(l.tail)-len(l.tail) >= n {
		return
	}
	newCap := 2 * cap(l.tail)
	if newCap < len(l.tail)+n {
		newCap = len(l.tail) + n
	}
	grown := make([]byte, len(l.tail), newCap) // alloc:allowed(tail growth is amortized: capacity doubles and is kept across flushes)
	copy(grown, l.tail)
	l.tail = grown
}

// NextLSN returns the LSN the next append will receive (i.e., the current
// logical end of the log).
//
// lockorder:acquires Log.mu
// lockorder:releases Log.mu
func (l *Log) NextLSN() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN
}

// DurableLSN returns the durability watermark: every record ending at or
// before it survives a crash. With a stable tail this is the logical end
// of the log.
func (l *Log) DurableLSN() LSN {
	if l.opts.StableTail {
		return l.NextLSN()
	}
	return LSN(l.flushed.Load())
}

// Durable reports whether the record ending at end is durable.
func (l *Log) Durable(end LSN) bool {
	return end <= l.DurableLSN()
}

// Flush writes the tail to the log file, advancing the durable watermark.
//
// walorder:covers
// lockorder:acquires Log.mu
// lockorder:releases Log.mu
func (l *Log) Flush() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.flushLocked()
}

// lockcheck:held l.mu
func (l *Log) flushLocked() error {
	if l.closed {
		return ErrClosed
	}
	if len(l.tail) == 0 {
		return nil
	}
	var began time.Time
	if m := l.opts.Metrics; m != nil && m.FlushSeconds != nil {
		began = time.Now()
	}
	n, err := l.f.WriteAt(l.tail, fileHeaderSize+int64(l.tailStart-l.base))
	if err != nil {
		return fmt.Errorf("wal: flush: %w", err)
	}
	if n != len(l.tail) {
		return fmt.Errorf("wal: flush: short write %d of %d", n, len(l.tail))
	}
	if l.opts.SyncOnFlush {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: sync: %w", err)
		}
	}
	l.bytesFlushed.Add(uint64(len(l.tail)))
	l.flushes.Add(1)
	if m := l.opts.Metrics; m != nil {
		if !began.IsZero() {
			m.FlushSeconds.ObserveSince(began)
		}
		m.FlushBatchBytes.Observe(uint64(len(l.tail)))
	}
	l.tailStart = l.nextLSN
	l.tail = l.tail[:0]
	l.flushed.Store(uint64(l.tailStart))
	l.flushCond.Broadcast()
	return nil
}

// WaitDurable blocks until the record ending at end is durable, flushing
// the tail if necessary. This is the synchronization point for the
// checkpointer's LSN checks and for synchronous commits.
//
// walorder:covers
// lockorder:acquires Log.mu
// lockorder:releases Log.mu
func (l *Log) WaitDurable(end LSN) error {
	if l.opts.StableTail {
		return nil
	}
	if LSN(l.flushed.Load()) >= end {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for LSN(l.flushed.Load()) < end {
		if l.closed {
			return ErrClosed
		}
		// Flush inline rather than waiting on the group-commit timer; the
		// paper's checkpointer "can determine when it is safe to flush the
		// segment copy by using log sequence numbers", and forcing the log
		// here preserves write-ahead without unbounded waits.
		if err := l.flushLocked(); err != nil {
			return err
		}
	}
	return nil
}

// TailLen returns the number of unflushed bytes (exported for tests and
// stats: with a stable tail this is the amount of stable RAM in use).
//
// lockorder:acquires Log.mu
// lockorder:releases Log.mu
func (l *Log) TailLen() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.tail)
}

// Stats is a snapshot of log activity counters.
type Stats struct {
	Appends      uint64
	Flushes      uint64
	BytesFlushed uint64
	DurableLSN   LSN
	EndLSN       LSN
}

// Stats returns a snapshot of the log's counters.
//
// lockorder:acquires Log.mu
// lockorder:releases Log.mu
func (l *Log) Stats() Stats {
	l.mu.Lock()
	end := l.nextLSN
	l.mu.Unlock()
	return Stats{
		Appends:      l.appends.Load(),
		Flushes:      l.flushes.Load(),
		BytesFlushed: l.bytesFlushed.Load(),
		DurableLSN:   l.DurableLSN(),
		EndLSN:       end,
	}
}

// Crash simulates a system failure (Section 2.7): the volatile tail is
// lost and the file is truncated to the durable watermark. With a stable
// tail the unflushed records survive — they are written out first, since
// the log file stands in for the stable RAM. The log is unusable
// afterwards; recovery re-opens the file with a Reader.
//
// lockorder:acquires Log.mu
// lockorder:releases Log.mu
func (l *Log) Crash() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	l.stopFlusherLocked()
	var err error
	if l.opts.StableTail {
		err = l.flushLocked()
	} else {
		// Discard the volatile tail and cut the file back to the durable
		// watermark so no partially-flushed bytes are visible.
		l.tail = nil
		err = l.f.Truncate(fileHeaderSize + int64(LSN(l.flushed.Load())-l.base))
	}
	l.closed = true
	l.crashed = true
	l.flushCond.Broadcast()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Close flushes and closes the log.
//
// lockorder:acquires Log.mu
// lockorder:releases Log.mu
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.stopFlusherLocked()
	err := l.flushLocked()
	if l.opts.SyncOnFlush {
		// flushLocked already synced; nothing more to do.
	} else if serr := l.f.Sync(); err == nil && serr != nil {
		err = fmt.Errorf("wal: close sync: %w", serr)
	}
	l.closed = true
	l.flushCond.Broadcast()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Base returns the oldest LSN still present in the log file (records
// before it have been compacted away).
//
// lockorder:acquires Log.mu
// lockorder:releases Log.mu
func (l *Log) Base() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.base
}

// Compact drops every record before keepFrom by rewriting the log file
// with a rebased header; no LSN changes. keepFrom must be a record
// boundary at or before the current log end — the engine passes the
// oldest redo-scan start any complete checkpoint could need. Returns the
// number of bytes freed.
//
// lockorder:acquires Log.mu
// lockorder:releases Log.mu
func (l *Log) Compact(keepFrom LSN) (freed int64, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if keepFrom <= l.base {
		return 0, nil
	}
	if keepFrom > l.nextLSN {
		return 0, fmt.Errorf("wal: compact point %d beyond log end %d", keepFrom, l.nextLSN)
	}
	if err := l.flushLocked(); err != nil {
		return 0, err
	}

	tmpPath := l.path + ".compact"
	tmp, err := l.fsys.OpenFile(tmpPath, os.O_CREATE|os.O_TRUNC|os.O_RDWR, 0o644)
	if err != nil {
		return 0, fmt.Errorf("wal: compact: %w", err)
	}
	defer l.fsys.Remove(tmpPath) //nolint:errcheckwal // no-op after the rename succeeds
	cleanup := func(e error) (int64, error) {
		tmp.Close()
		return 0, e
	}
	if _, err := tmp.Write(encodeHeader(keepFrom)); err != nil {
		return cleanup(fmt.Errorf("wal: compact header: %w", err))
	}
	src := io.NewSectionReader(l.f, fileHeaderSize+int64(keepFrom-l.base), int64(l.nextLSN-keepFrom))
	if _, err := io.Copy(tmp, src); err != nil {
		return cleanup(fmt.Errorf("wal: compact copy: %w", err))
	}
	// Safety: the first retained frame must decode (keepFrom was a record
	// boundary) unless the log is now empty.
	if l.nextLSN > keepFrom {
		probe := make([]byte, headerSize)
		if _, err := tmp.ReadAt(probe, fileHeaderSize); err != nil {
			return cleanup(fmt.Errorf("wal: compact verify: %w", err))
		}
		plen := int(binary.LittleEndian.Uint32(probe))
		if plen <= 0 || plen > MaxPayload || LSN(headerSize+plen+trailerSize) > l.nextLSN-keepFrom {
			return cleanup(fmt.Errorf("wal: compact point %d is not a record boundary", keepFrom))
		}
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(fmt.Errorf("wal: compact sync: %w", err))
	}
	if err := l.fsys.Rename(tmpPath, l.path); err != nil {
		return cleanup(fmt.Errorf("wal: compact rename: %w", err))
	}
	_ = l.fsys.SyncDir(filepath.Dir(l.path)) //nolint:errcheckwal // best-effort dir sync
	old := l.f
	l.f = tmp
	_ = old.Close()
	freed = int64(keepFrom - l.base)
	l.base = keepFrom
	return freed, nil
}

// Reset rewrites path as a valid empty log whose records start at LSN
// base, discarding any prior contents. Recovery uses it to repair a log
// whose file header was torn by a crash before any record could have
// become durable.
func Reset(fsys faultfs.FS, path string, base LSN) error {
	if err := faultfs.Or(fsys).WriteFile(path, encodeHeader(base), 0o644); err != nil {
		return fmt.Errorf("wal: reset: %w", err)
	}
	return nil
}

// CreateAt writes a fresh log file at path whose records start at LSN
// base with the given raw contents (which must be a valid record chain
// beginning at a record boundary). It returns the number of content bytes
// written. Used to restore archived logs.
func CreateAt(path string, base LSN, contents io.Reader) (int64, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return 0, fmt.Errorf("wal: create: %w", err)
	}
	if _, err := f.Write(encodeHeader(base)); err != nil {
		f.Close()
		return 0, fmt.Errorf("wal: create header: %w", err)
	}
	var n int64
	if contents != nil {
		n, err = io.Copy(f, contents)
		if err != nil {
			f.Close()
			return n, fmt.Errorf("wal: create contents: %w", err)
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return n, fmt.Errorf("wal: create sync: %w", err)
	}
	return n, f.Close()
}

// HasRecords reports whether the log file at path contains any records
// (an empty or header-only file does not).
func HasRecords(path string) (bool, error) {
	fi, err := os.Stat(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return false, nil
		}
		return false, err
	}
	return fi.Size() > fileHeaderSize, nil
}

// stopFlusherLocked stops the background flusher. Must hold l.mu; releases
// and reacquires it while waiting for the goroutine to exit.
// lockcheck:held l.mu
func (l *Log) stopFlusherLocked() {
	if l.stopFlusher == nil {
		return
	}
	ch := l.stopFlusher
	done := l.flusherDone
	l.stopFlusher = nil
	close(ch)
	l.mu.Unlock()
	<-done
	l.mu.Lock()
}
