package wal

import (
	"errors"
	"os"
	"testing"
)

func TestCompactDropsHead(t *testing.T) {
	path := tempLogPath(t)
	l := mustOpen(t, path, Options{})
	var bounds []LSN
	for i := 0; i < 10; i++ {
		start, _, err := l.Append(&Record{Type: TypeUpdate, TxnID: uint64(i), RecordID: 1, Data: []byte("abcdef")})
		if err != nil {
			t.Fatal(err)
		}
		bounds = append(bounds, start)
	}
	keep := bounds[4]
	freed, err := l.Compact(keep)
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if freed != int64(keep) {
		t.Errorf("freed %d bytes, want %d", freed, keep)
	}
	if l.Base() != keep {
		t.Errorf("Base = %d, want %d", l.Base(), keep)
	}

	// Appends continue with unchanged LSNs.
	postStart, _, err := l.Append(&Record{Type: TypeCommit, TxnID: 99})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := OpenReader(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Base() != keep {
		t.Errorf("reader Base = %d, want %d", r.Base(), keep)
	}
	var got []uint64
	if err := r.Scan(keep, func(e Entry) error {
		got = append(got, e.Rec.TxnID)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want := []uint64{4, 5, 6, 7, 8, 9, 99}
	if len(got) != len(want) {
		t.Fatalf("surviving records = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("surviving records = %v, want %v", got, want)
		}
	}
	// LSNs are stable: the first surviving record is still at keep.
	if got[0] != 4 {
		t.Error("record renumbered by compaction")
	}
	// Reading before the base fails loudly, not silently.
	err = r.Scan(bounds[0], func(Entry) error { return nil })
	if !errors.Is(err, ErrCompacted) {
		t.Errorf("scan before base: %v, want ErrCompacted", err)
	}
	_ = postStart
}

func TestCompactIsIdempotentAndBounded(t *testing.T) {
	l := mustOpen(t, tempLogPath(t), Options{})
	mid, _, err := l.Append(&Record{Type: TypeCommit, TxnID: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, end, err := l.Append(&Record{Type: TypeCommit, TxnID: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Compact(mid); err != nil {
		t.Fatal(err)
	}
	// Same point again: no-op.
	freed, err := l.Compact(mid)
	if err != nil || freed != 0 {
		t.Errorf("re-compact freed %d, err %v; want 0, nil", freed, err)
	}
	// Beyond the end: error.
	if _, err := l.Compact(end + 100); err == nil {
		t.Error("compact beyond end accepted")
	}
	// Not a record boundary: rejected by the probe.
	if _, err := l.Compact(mid + 1); err == nil {
		t.Error("mid-record compact point accepted")
	}
	// Compact to the exact end empties the log (legal).
	if _, err := l.Compact(end); err != nil {
		t.Errorf("compact to end: %v", err)
	}
	if l.Base() != end {
		t.Errorf("Base = %d, want %d", l.Base(), end)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCompactedLogSurvivesReopenAndCrash(t *testing.T) {
	path := tempLogPath(t)
	l := mustOpen(t, path, Options{})
	var keep LSN
	for i := 0; i < 6; i++ {
		start, _, err := l.Append(&Record{Type: TypeCommit, TxnID: uint64(i)})
		if err != nil {
			t.Fatal(err)
		}
		if i == 3 {
			keep = start
		}
	}
	if _, err := l.Compact(keep); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen, append, crash: the durable watermark math must respect the
	// rebased file offsets.
	l2 := mustOpen(t, path, Options{})
	if l2.Base() != keep {
		t.Fatalf("reopened Base = %d, want %d", l2.Base(), keep)
	}
	_, end7, err := l2.Append(&Record{Type: TypeCommit, TxnID: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := l2.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := l2.Append(&Record{Type: TypeCommit, TxnID: 8}); err != nil {
		t.Fatal(err)
	}
	if err := l2.Crash(); err != nil {
		t.Fatal(err)
	}
	r, err := OpenReader(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Size() != end7 {
		t.Errorf("post-crash end = %d, want %d", r.Size(), end7)
	}
	n := 0
	if err := r.Scan(keep, func(Entry) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 4 { // txns 3..6 plus 7 minus... 3,4,5,7 = records 3,4,5 then 7
		// Records with txn IDs 3,4,5 survived the compaction window start
		// at keep (txn 3), and txn 7 was flushed: 4 records total.
		t.Errorf("scan found %d records, want 4", n)
	}
}

func TestHasRecords(t *testing.T) {
	path := tempLogPath(t)
	if has, err := HasRecords(path); err != nil || has {
		t.Errorf("missing file: has=%v err=%v", has, err)
	}
	l := mustOpen(t, path, Options{})
	if has, err := HasRecords(path); err != nil || has {
		t.Errorf("header-only file: has=%v err=%v", has, err)
	}
	if _, _, err := l.Append(&Record{Type: TypeCommit, TxnID: 1}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if has, err := HasRecords(path); err != nil || !has {
		t.Errorf("file with records: has=%v err=%v", has, err)
	}
}

func TestHeaderCorruptionDetected(t *testing.T) {
	path := tempLogPath(t)
	l := mustOpen(t, path, Options{})
	if _, _, err := l.Append(&Record{Type: TypeCommit, TxnID: 1}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xFF}, 9); err != nil { // corrupt the base field
		t.Fatal(err)
	}
	f.Close()
	if _, err := OpenReader(path); err == nil {
		t.Error("corrupt header accepted by reader")
	}
	if _, err := Open(path, Options{}); err == nil {
		t.Error("corrupt header accepted by writer")
	}
}
