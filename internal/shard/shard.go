// Package shard hash-partitions a kvstore keyspace across N independent
// engines — the scale-out layer under cmd/mmdbd.
//
// Each shard is a complete, self-contained kvstore.Local: its own
// directory (Config.ShardDirName), WAL, lock manager, checkpoint loop,
// metrics registry, and span tracer. Keys route to shards by FNV-1a
// hash, so there is no cross-shard coordination — and no cross-shard
// lock — on any single-key path. Checkpoint schedules are staggered by
// shard*CheckpointInterval/Shards (see Config.ShardConfig), which with
// engine.Throttle.PerStream pricing bounds the aggregate backup
// bandwidth to one stream per concurrently-checkpointing shard instead
// of N simultaneous bursts.
//
// The Router implements kvstore.Store, so everything written against
// the in-process store — tests, benches, the mmdbd server — drives a
// sharded database unchanged.
package shard

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"mmdb"
	"mmdb/internal/obs"
	"mmdb/kvstore"
)

// FNV-1a, inlined so routing allocates nothing.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// Index returns the shard a key routes to among n shards.
func Index(key []byte, n int) int {
	h := uint64(fnvOffset64)
	for _, b := range key {
		h ^= uint64(b)
		h *= fnvPrime64
	}
	return int(h % uint64(n))
}

// shardObs is one shard's router-level counters. The shard's engine
// internals (commit latency, WAL bytes, checkpoint phases, span trees)
// live on that shard's own registry; these count what the router
// routed.
type shardObs struct {
	ops    *obs.Counter
	errors *obs.Counter
}

// Router fans a kvstore.Store across N shards. It is immutable after
// Open: the hot path reads the shard table without locks.
type Router struct {
	shards []*kvstore.Local
	obs    []shardObs
	reg    *obs.Registry

	batchSplits *obs.Counter

	closed atomic.Bool
}

// Open opens (or recovers) every shard of cfg concurrently and returns
// the router plus one recovery report per shard (nil entries for
// freshly created shards). cfg.Shards <= 1 opens a single shard with
// cfg's exact unsharded layout, so a one-shard router is byte-
// compatible with a plain kvstore database.
func Open(ctx context.Context, cfg mmdb.Config) (*Router, []*mmdb.RecoveryReport, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	n := cfg.Shards
	if n < 1 {
		n = 1
	}

	stores := make([]*kvstore.Local, n)
	reports := make([]*mmdb.RecoveryReport, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		sc, err := cfg.ShardConfig(i)
		if err != nil {
			return nil, nil, err
		}
		wg.Add(1)
		// goleak:joins wg.Wait below
		go func(i int, sc mmdb.Config) {
			defer wg.Done()
			stores[i], reports[i], errs[i] = kvstore.Open(sc)
		}(i, sc)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		for _, s := range stores {
			if s != nil {
				s.Close() //nolint:errcheckwal // best-effort cleanup; the open error takes precedence
			}
		}
		return nil, nil, fmt.Errorf("shard: open: %w", err)
	}

	r := &Router{shards: stores, reg: obs.NewRegistry()}
	r.batchSplits = r.reg.Counter("mmdb_router_batch_splits_total",
		"Batches that spanned more than one shard (applied per-shard, not atomically across shards).")
	r.obs = make([]shardObs, n)
	for i := range stores {
		i := i
		s := stores[i]
		r.obs[i] = shardObs{
			ops: r.reg.Counter(fmt.Sprintf("mmdb_shard_%03d_ops_total", i),
				"Operations the router routed to this shard."),
			errors: r.reg.Counter(fmt.Sprintf("mmdb_shard_%03d_errors_total", i),
				"Routed operations that returned an error."),
		}
		r.reg.GaugeFunc(fmt.Sprintf("mmdb_shard_%03d_entries", i),
			"Live entries stored in this shard.",
			func() float64 { return float64(s.Len()) })
		r.reg.CounterFunc(fmt.Sprintf("mmdb_shard_%03d_txns_committed_total", i),
			"Transactions committed by this shard's engine.",
			func() uint64 { return s.EngineStats().TxnsCommitted })
		r.reg.CounterFunc(fmt.Sprintf("mmdb_shard_%03d_checkpoints_total", i),
			"Checkpoints completed by this shard's engine.",
			func() uint64 { return s.EngineStats().Checkpoints })
	}
	return r, reports, nil
}

// NumShards returns the shard count.
func (r *Router) NumShards() int { return len(r.shards) }

// Shard exposes one shard's in-process store — the door to that shard's
// engine, metrics registry, and span tracer (per-shard flight
// recording comes for free: every engine carries its own).
func (r *Router) Shard(i int) *kvstore.Local { return r.shards[i] }

// Registry is the router-level metrics registry: per-shard routed-op
// counters (mmdb_shard_NNN_*, the shard encoded in the metric name) and
// router aggregates. Engine-internal metrics stay on each shard's own
// registry.
func (r *Router) Registry() *obs.Registry { return r.reg }

func (r *Router) route(key []byte) int { return Index(key, len(r.shards)) }

// count tallies one routed op (and its error) on shard i's counters.
func (r *Router) count(i int, err error) {
	r.obs[i].ops.Inc()
	if err != nil {
		r.obs[i].errors.Inc()
	}
}

// Get routes to the key's shard.
func (r *Router) Get(ctx context.Context, key []byte) ([]byte, bool, error) {
	i := r.route(key)
	v, ok, err := r.shards[i].Get(ctx, key)
	r.count(i, err)
	return v, ok, err
}

// Put routes to the key's shard.
func (r *Router) Put(ctx context.Context, key, val []byte) error {
	i := r.route(key)
	err := r.shards[i].Put(ctx, key, val)
	r.count(i, err)
	return err
}

// Delete routes to the key's shard.
func (r *Router) Delete(ctx context.Context, key []byte) (bool, error) {
	i := r.route(key)
	existed, err := r.shards[i].Delete(ctx, key)
	r.count(i, err)
	return existed, err
}

// Batch partitions ops by shard and applies each partition as that
// shard's atomic batch, in shard order.
//
// Semantics: a batch whose keys all hash to one shard is fully atomic
// (it is exactly a Local batch). A multi-shard batch is best-effort:
// each shard's slice commits atomically, but there is no atomicity
// across shards — a crash or an error can leave earlier shards'
// slices applied and later ones not. The first error stops the
// remaining shards and is returned wrapped with the failing shard.
// Cross-shard two-phase commit over the group-commit WAL is the
// planned upgrade; callers needing all-or-nothing today must keep a
// batch's keys on one shard.
func (r *Router) Batch(ctx context.Context, ops []kvstore.Op) error {
	if len(r.shards) == 1 {
		err := r.shards[0].Batch(ctx, ops)
		r.count(0, err)
		return err
	}
	// Partition preserving per-key order (order between different keys
	// inside one batch is immaterial: last-op-per-key wins, which
	// per-shard partitioning preserves).
	parts := make(map[int][]kvstore.Op, 2)
	for _, op := range ops {
		i := r.route(op.Key)
		parts[i] = append(parts[i], op)
	}
	if len(parts) > 1 {
		r.batchSplits.Inc()
	}
	for i := 0; i < len(r.shards); i++ {
		part, hit := parts[i]
		if !hit {
			continue
		}
		err := r.shards[i].Batch(ctx, part)
		r.count(i, err)
		if err != nil {
			return fmt.Errorf("shard %d: %w (multi-shard batches are per-shard atomic; earlier shards' ops are applied)", i, err)
		}
	}
	return nil
}

// Stats reports one ShardStats per shard, in shard order.
func (r *Router) Stats(ctx context.Context) (kvstore.StoreStats, error) {
	if err := ctx.Err(); err != nil {
		return kvstore.StoreStats{}, err
	}
	st := kvstore.StoreStats{Shards: make([]kvstore.ShardStats, len(r.shards))}
	for i, s := range r.shards {
		st.Shards[i] = kvstore.ShardStats{
			Shard:  i,
			Len:    s.Len(),
			Free:   s.Free(),
			Engine: s.EngineStats(),
		}
	}
	return st, nil
}

// Checkpoint forces one checkpoint on every shard, concurrently (each
// shard's engine serializes with its own loop internally).
func (r *Router) Checkpoint(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	errs := make([]error, len(r.shards))
	var wg sync.WaitGroup
	for i, s := range r.shards {
		wg.Add(1)
		// goleak:joins wg.Wait below
		go func(i int, s *kvstore.Local) {
			defer wg.Done()
			_, errs[i] = s.Checkpoint()
		}(i, s)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Close closes every shard. Safe to call twice.
func (r *Router) Close() error {
	if r.closed.Swap(true) {
		return nil
	}
	errs := make([]error, len(r.shards))
	for i, s := range r.shards {
		errs[i] = s.Close()
	}
	return errors.Join(errs...)
}

// Crash simulates a whole-process failure: every shard's engine drops
// its volatile state (tests only; reopen with Open).
func (r *Router) Crash() error {
	if r.closed.Swap(true) {
		return nil
	}
	errs := make([]error, len(r.shards))
	for i, s := range r.shards {
		errs[i] = s.Crash()
	}
	return errors.Join(errs...)
}

// Router implements the transport-agnostic store API.
var _ kvstore.Store = (*Router)(nil)
