package shard

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"time"

	"mmdb"
	"mmdb/kvstore"
	"mmdb/kvstore/storetest"
)

func testConfig(t *testing.T, shards int) mmdb.Config {
	t.Helper()
	return mmdb.Config{
		Dir:         t.TempDir(),
		NumRecords:  1024,
		RecordBytes: 128,
		Algorithm:   mmdb.COUCopy,
		SyncCommit:  true,
		Shards:      shards,
	}
}

func mustOpen(t *testing.T, cfg mmdb.Config) (*Router, []*mmdb.RecoveryReport) {
	t.Helper()
	r, reps, err := Open(context.Background(), cfg)
	if err != nil {
		t.Fatalf("shard.Open: %v", err)
	}
	return r, reps
}

// TestRouterConformance: a 4-shard router passes the identical
// interface suite as the in-process store.
func TestRouterConformance(t *testing.T) {
	storetest.Run(t, func(t *testing.T) kvstore.Store {
		r, _ := mustOpen(t, testConfig(t, 4))
		return r
	})
}

func TestIndexDeterministicAndSpread(t *testing.T) {
	counts := make([]int, 4)
	for i := 0; i < 4096; i++ {
		key := []byte(fmt.Sprintf("user/%d/profile", i))
		a, b := Index(key, 4), Index(key, 4)
		if a != b {
			t.Fatalf("Index(%q) unstable: %d vs %d", key, a, b)
		}
		counts[a]++
	}
	for sh, n := range counts {
		// FNV-1a over varied keys should land far from empty on every
		// shard; the bound is loose (an even split is 1024 each).
		if n < 512 {
			t.Errorf("shard %d got %d/4096 keys — routing badly skewed", sh, n)
		}
	}
}

// TestRouterPlacementAndIsolation checks that keys actually live where
// the router says: each key is present in exactly its shard's Local
// store and in no other.
func TestRouterPlacementAndIsolation(t *testing.T) {
	ctx := context.Background()
	r, _ := mustOpen(t, testConfig(t, 4))
	defer r.Close()

	const n = 200
	for i := 0; i < n; i++ {
		key := []byte(fmt.Sprintf("key-%04d", i))
		if err := r.Put(ctx, key, key); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	for i := 0; i < n; i++ {
		key := []byte(fmt.Sprintf("key-%04d", i))
		home := Index(key, r.NumShards())
		for sh := 0; sh < r.NumShards(); sh++ {
			_, ok, err := r.Shard(sh).Get(ctx, key)
			if err != nil {
				t.Fatalf("shard %d Get: %v", sh, err)
			}
			if want := sh == home; ok != want {
				t.Errorf("key %q present=%v on shard %d, want %v", key, ok, sh, want)
			}
		}
	}
	st, err := r.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Len() != n {
		t.Errorf("total Len = %d, want %d", st.Len(), n)
	}
}

// TestRouterCrashRecovery: per-shard checkpoints + per-shard WALs must
// recover the full keyspace after a whole-process crash — including
// keys written after the checkpoints, which survive only in each
// shard's own log.
func TestRouterCrashRecovery(t *testing.T) {
	ctx := context.Background()
	cfg := testConfig(t, 4)
	r, _ := mustOpen(t, cfg)

	val := func(i int, gen string) []byte { return []byte(fmt.Sprintf("%s-%06d", gen, i)) }
	const n = 300
	for i := 0; i < n; i++ {
		if err := r.Put(ctx, val(i, "key"), val(i, "old")); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	if err := r.Checkpoint(ctx); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	// Overwrite a prefix after the checkpoint: redo-log-only state.
	for i := 0; i < n/3; i++ {
		if err := r.Put(ctx, val(i, "key"), val(i, "new")); err != nil {
			t.Fatalf("post-ckpt Put: %v", err)
		}
	}
	if err := r.Crash(); err != nil {
		t.Fatalf("Crash: %v", err)
	}

	r2, reps := mustOpen(t, cfg)
	defer r2.Close()
	for i, rep := range reps {
		if rep == nil {
			t.Fatalf("shard %d: no recovery report after crash", i)
		}
		if !rep.UsedCheckpoint {
			t.Errorf("shard %d recovered without its checkpoint", i)
		}
	}
	for i := 0; i < n; i++ {
		want := val(i, "old")
		if i < n/3 {
			want = val(i, "new")
		}
		got, ok, err := r2.Get(ctx, val(i, "key"))
		if err != nil || !ok || !bytes.Equal(got, want) {
			t.Fatalf("key %d after recovery = %q ok %v err %v, want %q", i, got, ok, err, want)
		}
	}
}

// TestSingleShardEquivalence pins the upgrade path at the byte level: a
// Shards=1 router is the same database as a plain kvstore.Local — the
// same ops produce the same recovered primary image, record for
// record, and either side can reopen state the other wrote.
func TestSingleShardEquivalence(t *testing.T) {
	ctx := context.Background()
	plainCfg := testConfig(t, 0)
	routedCfg := testConfig(t, 1)

	apply := func(s kvstore.Store) {
		t.Helper()
		for i := 0; i < 200; i++ {
			k := []byte(fmt.Sprintf("key-%04d", i))
			if err := s.Put(ctx, k, []byte(fmt.Sprintf("val-%04d", i))); err != nil {
				t.Fatalf("Put: %v", err)
			}
		}
		if err := s.Batch(ctx, []kvstore.Op{
			{Key: []byte("key-0000"), Delete: true},
			{Key: []byte("key-0001"), Val: []byte("rewritten")},
		}); err != nil {
			t.Fatalf("Batch: %v", err)
		}
	}

	plain, _, err := kvstore.Open(plainCfg)
	if err != nil {
		t.Fatal(err)
	}
	apply(plain)
	if _, err := plain.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := plain.Crash(); err != nil {
		t.Fatal(err)
	}
	plain2, rep, err := kvstore.Open(plainCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer plain2.Close()
	if rep == nil {
		t.Fatal("plain store did not recover")
	}

	routed, _ := mustOpen(t, routedCfg)
	apply(routed)
	if err := routed.Checkpoint(ctx); err != nil {
		t.Fatal(err)
	}
	if err := routed.Crash(); err != nil {
		t.Fatal(err)
	}
	routed2, reps := mustOpen(t, routedCfg)
	defer routed2.Close()
	if len(reps) != 1 || reps[0] == nil {
		t.Fatal("routed store did not recover")
	}

	// Byte-level: identical primary images after recovery.
	dbA, dbB := plain2.DB(), routed2.Shard(0).DB()
	if dbA.NumRecords() != dbB.NumRecords() {
		t.Fatalf("record counts differ: %d vs %d", dbA.NumRecords(), dbB.NumRecords())
	}
	for rid := uint64(0); rid < uint64(dbA.NumRecords()); rid++ {
		a, err := dbA.ReadRecord(rid)
		if err != nil {
			t.Fatal(err)
		}
		b, err := dbB.ReadRecord(rid)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("record %d differs between plain and 1-shard router images", rid)
		}
	}
}

// TestRouterStaggeredCheckpointLoops: with AutoCheckpoint on, every
// shard runs its own loop and all of them complete checkpoints despite
// the phase-shifted starts.
func TestRouterStaggeredCheckpointLoops(t *testing.T) {
	ctx := context.Background()
	cfg := testConfig(t, 4)
	cfg.AutoCheckpoint = true
	cfg.CheckpointInterval = 20 * time.Millisecond
	r, _ := mustOpen(t, cfg)
	defer r.Close()

	for i := 0; i < 100; i++ {
		if err := r.Put(ctx, []byte(fmt.Sprintf("k%03d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.After(10 * time.Second)
	for {
		st, err := r.Stats(ctx)
		if err != nil {
			t.Fatal(err)
		}
		done := 0
		for _, sh := range st.Shards {
			if sh.Engine.Checkpoints > 0 {
				done++
			}
		}
		if done == r.NumShards() {
			return
		}
		select {
		case <-deadline:
			t.Fatalf("only %d/%d shards checkpointed in 10s", done, r.NumShards())
		case <-time.After(10 * time.Millisecond):
		}
	}
}

func TestRouterMetrics(t *testing.T) {
	ctx := context.Background()
	r, _ := mustOpen(t, testConfig(t, 2))
	defer r.Close()

	// Split batch: keys that hash to different shards.
	var ops []kvstore.Op
	seen := map[int]bool{}
	for i := 0; len(seen) < 2; i++ {
		k := []byte(fmt.Sprintf("spread-%d", i))
		seen[Index(k, 2)] = true
		ops = append(ops, kvstore.Op{Key: k, Val: []byte("v")})
	}
	if err := r.Batch(ctx, ops); err != nil {
		t.Fatalf("Batch: %v", err)
	}

	names := map[string]bool{}
	for _, n := range r.Registry().Names() {
		names[n] = true
	}
	for _, want := range []string{
		"mmdb_shard_000_ops_total",
		"mmdb_shard_001_ops_total",
		"mmdb_shard_000_errors_total",
		"mmdb_shard_000_entries",
		"mmdb_shard_001_txns_committed_total",
		"mmdb_shard_000_checkpoints_total",
		"mmdb_router_batch_splits_total",
	} {
		if !names[want] {
			t.Errorf("registry missing %s (have %v)", want, r.Registry().Names())
		}
	}
	if got := r.batchSplits.Value(); got != 1 {
		t.Errorf("batch splits counter = %d, want 1", got)
	}
	total := r.obs[0].ops.Value() + r.obs[1].ops.Value()
	if total == 0 {
		t.Error("no routed ops counted")
	}
}
