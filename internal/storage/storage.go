// Package storage implements the primary (memory-resident) database of the
// paper: S_db words of data grouped into fixed-size records, which are in
// turn grouped into segments, the unit of transfer to the backup disks
// (Section 2.4 of Salem & Garcia-Molina, "Checkpointing Memory-Resident
// Databases").
//
// Each segment carries the per-segment state the checkpoint algorithms
// need: a short-term latch, the LSN of its most recent installed update
// (for the write-ahead check), one dirty bit per ping-pong backup copy
// (for partial checkpoints), a paint mark (for the two-color algorithms),
// and a timestamp plus old-copy pointer (for copy-on-update).
package storage

import (
	"fmt"
	"sync"

	"mmdb/internal/wal"
)

// NumBackupCopies is the number of ping-pong backup database copies
// (Section 2.6: two backups, alternately updated).
const NumBackupCopies = 2

// Config describes the database geometry. All sizes are in bytes; the
// analytic model's word-based parameters convert at 4 bytes/word.
type Config struct {
	// NumRecords is the number of fixed-size records in the database.
	NumRecords int
	// RecordBytes is the record size (the paper's S_rec, in bytes).
	RecordBytes int
	// SegmentBytes is the segment size (the paper's S_seg, in bytes). It
	// must be a multiple of RecordBytes.
	SegmentBytes int
}

// Validate checks the geometry for consistency.
func (c Config) Validate() error {
	if c.NumRecords <= 0 {
		return fmt.Errorf("storage: NumRecords must be positive, got %d", c.NumRecords)
	}
	if c.RecordBytes <= 0 {
		return fmt.Errorf("storage: RecordBytes must be positive, got %d", c.RecordBytes)
	}
	if c.SegmentBytes <= 0 {
		return fmt.Errorf("storage: SegmentBytes must be positive, got %d", c.SegmentBytes)
	}
	if c.SegmentBytes%c.RecordBytes != 0 {
		return fmt.Errorf("storage: SegmentBytes (%d) must be a multiple of RecordBytes (%d)",
			c.SegmentBytes, c.RecordBytes)
	}
	return nil
}

// RecordsPerSegment returns how many records fit in one segment.
func (c Config) RecordsPerSegment() int { return c.SegmentBytes / c.RecordBytes }

// NumSegments returns the number of segments needed to hold NumRecords.
// The final segment may be partially used but is full-sized on disk.
func (c Config) NumSegments() int {
	per := c.RecordsPerSegment()
	return (c.NumRecords + per - 1) / per
}

// DatabaseBytes returns the total segment-aligned database size.
func (c Config) DatabaseBytes() int { return c.NumSegments() * c.SegmentBytes }

// OldCopy is the pre-checkpoint version of a segment preserved by a
// copy-on-update transaction (Figure 3.2 of the paper). The checkpointer
// flushes the old copy instead of the live segment, keeping the backup
// transaction-consistent as of the checkpoint's begin timestamp.
type OldCopy struct {
	// Data is the segment image as of the copy.
	Data []byte
	// Dirty snapshots the segment's per-copy dirty bits at copy time, so
	// a partial checkpoint can still skip segments that were clean for its
	// target backup copy when the checkpoint began.
	Dirty [NumBackupCopies]bool
	// TS is the segment timestamp at copy time (the τ(S) value the old
	// copy preserves).
	TS uint64
}

// Segment is one unit of checkpoint transfer plus its bookkeeping state.
// The embedded RWMutex is a short-term latch guarding Data and all the
// bookkeeping fields; transactions hold it only while installing a record
// and checkpointers only while copying or flushing, never across waits.
type Segment struct {
	sync.RWMutex // lockorder:level=40

	// Data is the live segment image. guarded_by:RWMutex
	Data []byte

	// LastLSN is the end LSN of the most recent update installed into this
	// segment, wal.NilLSN if never updated. The write-ahead rule permits
	// flushing the segment to the backup disks only once the log is
	// durable past LastLSN. guarded_by:RWMutex
	LastLSN wal.LSN

	// Dirty holds one dirty bit per ping-pong backup copy: Dirty[c] is set
	// when an update is installed and cleared when the segment's current
	// contents reach backup copy c. Partial checkpoints flush exactly the
	// segments dirty for their target copy. guarded_by:RWMutex
	Dirty [NumBackupCopies]bool

	// Paint is the two-color paint mark: the ID of the checkpoint that
	// most recently processed ("painted black") this segment. During
	// checkpoint k a segment is black iff Paint == k, white otherwise.
	// guarded_by:RWMutex
	Paint uint64

	// TS is the timestamp of the most recent transaction to update the
	// segment (the paper's τ(S), used by copy-on-update).
	// guarded_by:RWMutex
	TS uint64

	// Old points at the copy-on-update old version, if a transaction has
	// preserved one during the current checkpoint. guarded_by:RWMutex
	Old *OldCopy

	// Shadow is the zigzag second slab: a full alternate image of the
	// segment, allocated only when the store is opened with EnableShadow
	// (nil otherwise). Zigzag keeps two bits per segment — which image is
	// live and whether the live image has diverged from the begin-state
	// image — realised here as the Data/Shadow pointer pair plus
	// ZigPending. While a zigzag checkpoint is active and ZigPending has
	// been consumed, Shadow holds the image as of checkpoint begin and is
	// never written again until the next begin. guarded_by:RWMutex
	Shadow []byte

	// ZigPending is the zigzag "not yet diverged" bit: set for every
	// segment when a zigzag checkpoint begins (under quiescence), cleared
	// by the first writer to touch the segment during the run, at which
	// point the writer has flipped Data/Shadow so Shadow preserves the
	// begin-state image. guarded_by:RWMutex
	ZigPending bool

	// SnapNeed is the zigzag "this run must dump me" bit, latched at
	// checkpoint begin as Full || Dirty[target]. The sweep consults it
	// instead of the live Dirty bits because a mid-run writer flip swaps
	// which physical buffer the dirty bits describe. guarded_by:RWMutex
	SnapNeed bool
}

// Snapshot copies the segment image into dst (which must be SegmentBytes
// long) and returns the segment's LastLSN. Caller must hold the latch (in
// at least shared mode).
// lockcheck:held s
func (s *Segment) Snapshot(dst []byte) wal.LSN {
	copy(dst, s.Data)
	return s.LastLSN
}

// TakeOld detaches and returns the old copy, or nil. Caller must hold the
// latch exclusively.
// lockcheck:held s
func (s *Segment) TakeOld() *OldCopy {
	o := s.Old
	s.Old = nil
	return o
}

// Store is the memory-resident primary database.
type Store struct {
	cfg  Config
	slab []byte
	segs []Segment
}

// New allocates a zero-filled database with the given geometry.
func New(cfg Config) (*Store, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.NumSegments()
	st := &Store{
		cfg:  cfg,
		slab: make([]byte, cfg.DatabaseBytes()),
		segs: make([]Segment, n),
	}
	for i := range st.segs {
		st.segs[i].Data = st.slab[i*cfg.SegmentBytes : (i+1)*cfg.SegmentBytes] //nolint:lockcheck // not shared until New returns
		st.segs[i].LastLSN = wal.NilLSN                                        //nolint:lockcheck // not shared until New returns
	}
	return st, nil
}

// EnableShadow allocates the zigzag second slab: one alternate full-size
// image per segment, backing Segment.Shadow. Idempotent. Must be called
// before the store is shared (engine construction, like New itself) — the
// zigzag write path then flips Data/Shadow under the segment latch with
// zero allocations.
func (s *Store) EnableShadow() {
	if s.segs[0].Shadow != nil { //nolint:lockcheck // not shared until engine construction returns
		return
	}
	slab := make([]byte, s.cfg.DatabaseBytes())
	for i := range s.segs {
		s.segs[i].Shadow = slab[i*s.cfg.SegmentBytes : (i+1)*s.cfg.SegmentBytes] //nolint:lockcheck // not shared until engine construction returns
	}
}

// Config returns the store geometry.
func (s *Store) Config() Config { return s.cfg }

// NumSegments returns the segment count.
func (s *Store) NumSegments() int { return len(s.segs) }

// Seg returns segment i.
func (s *Store) Seg(i int) *Segment { return &s.segs[i] }

// SegmentIndexOf returns the index of the segment containing record rid.
func (s *Store) SegmentIndexOf(rid uint64) int {
	return int(rid) / s.cfg.RecordsPerSegment()
}

// Locate resolves a record ID to its segment and intra-segment offset.
func (s *Store) Locate(rid uint64) (seg *Segment, segIdx, offset int, err error) {
	if rid >= uint64(s.cfg.NumRecords) {
		return nil, 0, 0, fmt.Errorf("storage: record %d out of range [0,%d)", rid, s.cfg.NumRecords)
	}
	per := s.cfg.RecordsPerSegment()
	segIdx = int(rid) / per
	offset = (int(rid) % per) * s.cfg.RecordBytes
	return &s.segs[segIdx], segIdx, offset, nil
}

// ReadRecord copies record rid into dst (of at least RecordBytes) under
// the segment latch.
func (s *Store) ReadRecord(rid uint64, dst []byte) error {
	seg, _, off, err := s.Locate(rid)
	if err != nil {
		return err
	}
	seg.RLock()
	copy(dst[:s.cfg.RecordBytes], seg.Data[off:off+s.cfg.RecordBytes])
	seg.RUnlock()
	return nil
}

// LoadSegment overwrites segment i with data during recovery. Not
// latched: recovery precedes transaction processing, and its parallel
// loaders give each segment to exactly one stripe reader, so no two
// goroutines ever touch the same segment.
func (s *Store) LoadSegment(i int, data []byte) error {
	if i < 0 || i >= len(s.segs) {
		return fmt.Errorf("storage: segment %d out of range [0,%d)", i, len(s.segs))
	}
	if len(data) != s.cfg.SegmentBytes {
		return fmt.Errorf("storage: segment %d load size %d, want %d", i, len(data), s.cfg.SegmentBytes)
	}
	copy(s.segs[i].Data, data) //nolint:lockcheck // recovery is single-threaded per segment; see doc comment
	return nil
}

// WriteRecordRaw installs record data without logging or bookkeeping. It
// is the recovery manager's redo-apply primitive ("new values of modified
// records are written in place in primary memory") and is also not
// latched: partitioned redo routes every record of a segment to the same
// apply worker, so per-segment application stays single-threaded.
func (s *Store) WriteRecordRaw(rid uint64, data []byte) error {
	seg, _, off, err := s.Locate(rid)
	if err != nil {
		return err
	}
	n := copy(seg.Data[off:off+s.cfg.RecordBytes], data) //nolint:lockcheck // recovery is single-threaded per segment; see doc comment
	for ; n < s.cfg.RecordBytes; n++ {
		seg.Data[off+n] = 0 //nolint:lockcheck // recovery is single-threaded per segment; see doc comment
	}
	return nil
}
