package storage

import (
	"bytes"
	"testing"
	"testing/quick"

	"mmdb/internal/wal"
)

func validConfig() Config {
	return Config{NumRecords: 1000, RecordBytes: 32, SegmentBytes: 256}
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"valid", validConfig(), true},
		{"zero records", Config{NumRecords: 0, RecordBytes: 32, SegmentBytes: 256}, false},
		{"zero record size", Config{NumRecords: 10, RecordBytes: 0, SegmentBytes: 256}, false},
		{"zero segment size", Config{NumRecords: 10, RecordBytes: 32, SegmentBytes: 0}, false},
		{"segment not multiple", Config{NumRecords: 10, RecordBytes: 32, SegmentBytes: 100}, false},
		{"record equals segment", Config{NumRecords: 10, RecordBytes: 64, SegmentBytes: 64}, true},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		if (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

func TestGeometryDerivations(t *testing.T) {
	cfg := validConfig()
	if got := cfg.RecordsPerSegment(); got != 8 {
		t.Errorf("RecordsPerSegment = %d, want 8", got)
	}
	// 1000 records / 8 per segment = 125 segments exactly.
	if got := cfg.NumSegments(); got != 125 {
		t.Errorf("NumSegments = %d, want 125", got)
	}
	if got := cfg.DatabaseBytes(); got != 125*256 {
		t.Errorf("DatabaseBytes = %d, want %d", got, 125*256)
	}
	// Non-exact division rounds up.
	cfg.NumRecords = 1001
	if got := cfg.NumSegments(); got != 126 {
		t.Errorf("NumSegments (1001 records) = %d, want 126", got)
	}
}

func TestLocateAndReadWrite(t *testing.T) {
	st, err := New(validConfig())
	if err != nil {
		t.Fatal(err)
	}
	seg, segIdx, off, err := st.Locate(9)
	if err != nil {
		t.Fatal(err)
	}
	if segIdx != 1 || off != 32 {
		t.Errorf("Locate(9) = seg %d off %d, want seg 1 off 32", segIdx, off)
	}
	if seg != st.Seg(1) {
		t.Error("Locate returned wrong segment pointer")
	}
	if st.SegmentIndexOf(9) != 1 {
		t.Errorf("SegmentIndexOf(9) = %d, want 1", st.SegmentIndexOf(9))
	}

	payload := []byte("0123456789abcdef0123456789abcdef")
	if err := st.WriteRecordRaw(9, payload); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 32)
	if err := st.ReadRecord(9, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("read back %q, want %q", got, payload)
	}

	// Short write zero-pads.
	if err := st.WriteRecordRaw(9, []byte("xy")); err != nil {
		t.Fatal(err)
	}
	if err := st.ReadRecord(9, got); err != nil {
		t.Fatal(err)
	}
	want := make([]byte, 32)
	copy(want, "xy")
	if !bytes.Equal(got, want) {
		t.Errorf("short write read back %q, want %q", got, want)
	}

	if _, _, _, err := st.Locate(uint64(validConfig().NumRecords)); err == nil {
		t.Error("Locate past end should fail")
	}
	if err := st.WriteRecordRaw(1<<40, payload); err == nil {
		t.Error("WriteRecordRaw out of range should fail")
	}
}

func TestSegmentSnapshotAndOld(t *testing.T) {
	st, err := New(validConfig())
	if err != nil {
		t.Fatal(err)
	}
	seg := st.Seg(0)
	seg.Lock()
	copy(seg.Data, "segment-zero-content")
	seg.LastLSN = 77
	buf := make([]byte, len(seg.Data))
	lsn := seg.Snapshot(buf)
	seg.Unlock()
	if lsn != 77 {
		t.Errorf("Snapshot LSN = %d, want 77", lsn)
	}
	if !bytes.Equal(buf[:20], []byte("segment-zero-content")) {
		t.Error("Snapshot content mismatch")
	}

	seg.Lock()
	seg.Old = &OldCopy{Data: buf, TS: 5}
	old := seg.TakeOld()
	if old == nil || old.TS != 5 {
		t.Errorf("TakeOld = %+v, want TS 5", old)
	}
	if seg.TakeOld() != nil {
		t.Error("second TakeOld should return nil")
	}
	seg.Unlock()
}

func TestNewSegmentsInitialized(t *testing.T) {
	st, err := New(validConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < st.NumSegments(); i++ {
		seg := st.Seg(i)
		if seg.LastLSN != wal.NilLSN {
			t.Fatalf("segment %d LastLSN = %d, want NilLSN", i, seg.LastLSN)
		}
		if seg.Dirty[0] || seg.Dirty[1] {
			t.Fatalf("segment %d born dirty", i)
		}
		if len(seg.Data) != 256 {
			t.Fatalf("segment %d data length %d", i, len(seg.Data))
		}
	}
}

func TestLoadSegment(t *testing.T) {
	st, err := New(validConfig())
	if err != nil {
		t.Fatal(err)
	}
	img := bytes.Repeat([]byte{0xAB}, 256)
	if err := st.LoadSegment(3, img); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 32)
	if err := st.ReadRecord(3*8, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, img[:32]) {
		t.Error("LoadSegment content not visible through ReadRecord")
	}
	if err := st.LoadSegment(3, img[:10]); err == nil {
		t.Error("LoadSegment with wrong size should fail")
	}
	if err := st.LoadSegment(-1, img); err == nil {
		t.Error("LoadSegment out of range should fail")
	}
}

// TestWriteReadQuick property-tests that writes to distinct records never
// interfere: writing record A then reading record B≠A returns B's prior
// content.
func TestWriteReadQuick(t *testing.T) {
	cfg := validConfig()
	st, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	oracle := make(map[uint64][]byte)
	f := func(ridRaw uint64, data []byte) bool {
		rid := ridRaw % uint64(cfg.NumRecords)
		if len(data) > cfg.RecordBytes {
			data = data[:cfg.RecordBytes]
		}
		if err := st.WriteRecordRaw(rid, data); err != nil {
			return false
		}
		img := make([]byte, cfg.RecordBytes)
		copy(img, data)
		oracle[rid] = img
		// Check a few oracle entries, including the one just written.
		for k, want := range oracle {
			got := make([]byte, cfg.RecordBytes)
			if err := st.ReadRecord(k, got); err != nil {
				return false
			}
			if !bytes.Equal(got, want) {
				return false
			}
			break
		}
		got := make([]byte, cfg.RecordBytes)
		if err := st.ReadRecord(rid, got); err != nil {
			return false
		}
		return bytes.Equal(got, img)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
