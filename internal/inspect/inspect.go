// Package inspect implements offline examination of an mmdb database
// directory: checkpoint metadata, backup checksum verification, log
// scanning, and recovery dry runs. cmd/mmdbctl is a thin CLI over it.
// The database must not be open while it is inspected.
package inspect

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"mmdb/internal/backup"
	"mmdb/internal/engine"
	"mmdb/internal/storage"
	"mmdb/internal/wal"
)

// logFileName mirrors the engine's log file name.
const logFileName = "redo.log"

// Geometry is the backup store's segment layout.
type Geometry struct {
	NumSegments  int
	SegmentBytes int
}

// ProbeGeometry reads the segment layout from the backup metadata file
// without needing the database configuration.
func ProbeGeometry(dir string) (Geometry, error) {
	raw, err := os.ReadFile(filepath.Join(dir, "backup.meta"))
	if err != nil {
		return Geometry{}, fmt.Errorf("inspect: %w", err)
	}
	var probe struct {
		NumSegments  int `json:"num_segments"`
		SegmentBytes int `json:"segment_bytes"`
	}
	if err := json.Unmarshal(raw, &probe); err != nil {
		return Geometry{}, fmt.Errorf("inspect: corrupt backup metadata: %w", err)
	}
	if probe.NumSegments <= 0 || probe.SegmentBytes <= 0 {
		return Geometry{}, errors.New("inspect: backup metadata carries no geometry")
	}
	return Geometry{NumSegments: probe.NumSegments, SegmentBytes: probe.SegmentBytes}, nil
}

// LogInfo summarizes the redo log file.
type LogInfo struct {
	// Base is the oldest LSN still present (after head compaction);
	// ValidEnd the end of the intact record chain; FileEnd the raw end of
	// the file. TornBytes = FileEnd − ValidEnd.
	Base      wal.LSN
	ValidEnd  wal.LSN
	FileEnd   wal.LSN
	TornBytes int64
	// Counts tallies the valid records by type.
	Counts map[wal.RecordType]int
}

// DirInfo is the offline view of a database directory.
type DirInfo struct {
	Geometry Geometry
	// Copies holds each ping-pong copy's checkpoint status.
	Copies [storage.NumBackupCopies]backup.CheckpointInfo
	// RecoveryCopy and RecoveryCheckpoint identify the checkpoint recovery
	// would use; HasRecoverySource is false when no complete checkpoint
	// exists (recovery would replay the whole log from the zero state).
	HasRecoverySource  bool
	RecoveryCopy       int
	RecoveryCheckpoint backup.CheckpointInfo
	// Log summarizes the redo log; nil if the log file is missing.
	Log *LogInfo
}

// Info gathers DirInfo for dir.
func Info(dir string) (*DirInfo, error) {
	geo, err := ProbeGeometry(dir)
	if err != nil {
		return nil, err
	}
	bs, err := backup.Open(dir, geo.NumSegments, geo.SegmentBytes)
	if err != nil {
		return nil, err
	}
	defer bs.Close() //nolint:errcheckwal // read-only inspection handle

	di := &DirInfo{Geometry: geo}
	for c := 0; c < storage.NumBackupCopies; c++ {
		di.Copies[c] = bs.CopyInfo(c)
	}
	if c, ci, err := bs.Latest(); err == nil {
		di.HasRecoverySource = true
		di.RecoveryCopy = c
		di.RecoveryCheckpoint = ci
	}

	li, err := scanLog(dir)
	if err == nil {
		di.Log = li
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, err
	}
	return di, nil
}

func scanLog(dir string) (*LogInfo, error) {
	r, err := wal.OpenReader(filepath.Join(dir, logFileName))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, os.ErrNotExist
		}
		return nil, err
	}
	defer r.Close() //nolint:errcheckwal // read-only inspection handle
	li := &LogInfo{
		Base:    r.Base(),
		FileEnd: r.Size(),
		Counts:  make(map[wal.RecordType]int),
	}
	li.ValidEnd = r.Base()
	err = r.Scan(r.Base(), func(e wal.Entry) error {
		li.ValidEnd = e.Next
		li.Counts[e.Rec.Type]++
		return nil
	})
	if err != nil {
		return nil, err
	}
	li.TornBytes = li.FileEnd.Sub(li.ValidEnd)
	return li, nil
}

// VerifyResult reports checksum verification of both backup copies and
// validation of the log chain.
type VerifyResult struct {
	// CopySegments[c] is the number of written, checksum-valid segment
	// slots in copy c.
	CopySegments [storage.NumBackupCopies]int
	Log          LogInfo
}

// Verify checks every written backup slot against its checksum and walks
// the log chain. A checksum or chain failure is returned as an error.
func Verify(dir string) (*VerifyResult, error) {
	geo, err := ProbeGeometry(dir)
	if err != nil {
		return nil, err
	}
	bs, err := backup.Open(dir, geo.NumSegments, geo.SegmentBytes)
	if err != nil {
		return nil, err
	}
	defer bs.Close() //nolint:errcheckwal // read-only inspection handle
	res := &VerifyResult{}
	for c := 0; c < storage.NumBackupCopies; c++ {
		n, err := bs.Verify(c)
		if err != nil {
			return nil, fmt.Errorf("inspect: backup copy %d: %w", c, err)
		}
		res.CopySegments[c] = n
	}
	li, err := scanLog(dir)
	if err != nil {
		return nil, err
	}
	res.Log = *li
	return res, nil
}

// IterateLog streams valid log records from LSN from (clamped up to the
// compacted base), stopping after limit records when limit > 0. fn may
// stop early by returning a non-nil error, which is swallowed if it is
// ErrStopIteration and propagated otherwise.
func IterateLog(dir string, from wal.LSN, limit int, fn func(wal.Entry) error) (int, error) {
	r, err := wal.OpenReader(filepath.Join(dir, logFileName))
	if err != nil {
		return 0, err
	}
	defer r.Close() //nolint:errcheckwal // read-only inspection handle
	if from.Before(r.Base()) {
		from = r.Base()
	}
	n := 0
	err = r.Scan(from, func(e wal.Entry) error {
		if err := fn(e); err != nil {
			return err
		}
		n++
		if limit > 0 && n >= limit {
			return ErrStopIteration
		}
		return nil
	})
	if err != nil && !errors.Is(err, ErrStopIteration) {
		return n, err
	}
	return n, nil
}

// ErrStopIteration stops IterateLog early without reporting an error.
var ErrStopIteration = errors.New("inspect: stop iteration")

// DryRun copies the directory to scratch space, runs full crash recovery
// there, and returns the report; the original directory is untouched.
// Custom logical operations used by the database must be supplied in ops.
func DryRun(dir string, cfg storage.Config, ops map[engine.OpCode]engine.OpFunc) (*engine.RecoveryReport, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	scratch, err := os.MkdirTemp("", "mmdb-inspect-dryrun-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(scratch)
	if err := copyDir(dir, scratch); err != nil {
		return nil, err
	}
	e, rep, err := engine.Recover(engine.Params{
		Dir:        scratch,
		Storage:    cfg,
		Algorithm:  engine.FuzzyCopy, // recovery is algorithm-agnostic
		Operations: ops,
	})
	if err != nil {
		return nil, err
	}
	if err := e.Close(); err != nil {
		return rep, err
	}
	return rep, nil
}

// copyDir copies the regular files of src into dst.
func copyDir(src, dst string) error {
	entries, err := os.ReadDir(src)
	if err != nil {
		return err
	}
	for _, ent := range entries {
		if ent.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, ent.Name()))
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dst, ent.Name()), data, 0o644); err != nil {
			return err
		}
	}
	return nil
}
