package inspect

import (
	"bytes"
	"encoding/binary"
	"errors"
	"strings"
	"testing"

	"mmdb/internal/engine"
	"mmdb/internal/storage"
)

func TestArchiveRestoreRoundTrip(t *testing.T) {
	dir, cfg := buildDatabase(t)

	var buf bytes.Buffer
	segs, logBytes, err := Archive(dir, &buf)
	if err != nil {
		t.Fatalf("Archive: %v", err)
	}
	if segs == 0 || logBytes == 0 {
		t.Fatalf("archive wrote %d segments, %d log bytes", segs, logBytes)
	}

	restoreDir := t.TempDir()
	info, err := RestoreArchive(bytes.NewReader(buf.Bytes()), restoreDir)
	if err != nil {
		t.Fatalf("RestoreArchive: %v", err)
	}
	if info.Segments != segs || info.LogBytes != logBytes {
		t.Errorf("restore info %+v, archived %d/%d", info, segs, logBytes)
	}

	// The restored directory recovers to the same state as the original.
	want := recoverAll(t, dir, cfg)
	got := recoverAll(t, restoreDir, cfg)
	if !bytes.Equal(want, got) {
		t.Error("restored database state differs from the original")
	}
}

// recoverAll recovers the directory and returns the full database image.
func recoverAll(t *testing.T, dir string, cfg storage.Config) []byte {
	t.Helper()
	e, _, err := engine.Recover(engine.Params{
		Dir: dir, Storage: cfg, Algorithm: engine.COUCopy,
	})
	if err != nil {
		t.Fatalf("recover %s: %v", dir, err)
	}
	defer e.Close()
	out := make([]byte, 0, cfg.NumRecords*cfg.RecordBytes)
	buf := make([]byte, cfg.RecordBytes)
	for rid := 0; rid < cfg.NumRecords; rid++ {
		if err := e.ReadRecord(uint64(rid), buf); err != nil {
			t.Fatal(err)
		}
		out = append(out, buf...)
	}
	return out
}

func TestArchiveRequiresCheckpoint(t *testing.T) {
	// A directory without a complete checkpoint cannot be archived.
	dir := t.TempDir()
	cfg := storage.Config{NumRecords: 256, RecordBytes: 32, SegmentBytes: 256}
	e, err := engine.Open(engine.Params{Dir: dir, Storage: cfg, Algorithm: engine.FuzzyCopy, SyncCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Exec(func(tx *engine.Txn) error { return tx.Write(0, []byte("x")) }); err != nil {
		t.Fatal(err)
	}
	if err := e.Crash(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, _, err := Archive(dir, &buf); err == nil {
		t.Error("archived a directory with no complete checkpoint")
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	if _, err := RestoreArchive(strings.NewReader("not an archive at all"), t.TempDir()); !errors.Is(err, ErrNotArchive) {
		t.Errorf("garbage restore err = %v, want ErrNotArchive", err)
	}
	if _, err := RestoreArchive(strings.NewReader(archiveMagic), t.TempDir()); !errors.Is(err, ErrNotArchive) {
		t.Errorf("truncated restore err = %v, want ErrNotArchive", err)
	}
}

func TestRestoreRejectsOccupiedDirectory(t *testing.T) {
	dir, _ := buildDatabase(t)
	var buf bytes.Buffer
	if _, _, err := Archive(dir, &buf); err != nil {
		t.Fatal(err)
	}
	// Restoring over the source (which holds a database) must fail.
	if _, err := RestoreArchive(bytes.NewReader(buf.Bytes()), dir); err == nil {
		t.Error("restore over an existing database accepted")
	}
}

func TestRestoreDetectsTruncatedSegments(t *testing.T) {
	dir, _ := buildDatabase(t)
	var buf bytes.Buffer
	if _, _, err := Archive(dir, &buf); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-40] // drop the tail
	if _, err := RestoreArchive(bytes.NewReader(cut), t.TempDir()); err == nil {
		t.Error("truncated archive accepted")
	}
}

func TestRestoredDatabaseKeepsWorking(t *testing.T) {
	dir, cfg := buildDatabase(t)
	var buf bytes.Buffer
	if _, _, err := Archive(dir, &buf); err != nil {
		t.Fatal(err)
	}
	restoreDir := t.TempDir()
	if _, err := RestoreArchive(bytes.NewReader(buf.Bytes()), restoreDir); err != nil {
		t.Fatal(err)
	}
	e, _, err := engine.Recover(engine.Params{
		Dir: restoreDir, Storage: cfg, Algorithm: engine.COUCopy, SyncCommit: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// New transactions and checkpoints work in the restored world.
	if err := e.Exec(func(tx *engine.Txn) error {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], 777)
		return tx.Write(100, b[:])
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := e.Crash(); err != nil {
		t.Fatal(err)
	}
	e2, _, err := engine.Recover(engine.Params{
		Dir: restoreDir, Storage: cfg, Algorithm: engine.COUCopy,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	b := make([]byte, cfg.RecordBytes)
	if err := e2.ReadRecord(100, b); err != nil {
		t.Fatal(err)
	}
	if binary.LittleEndian.Uint64(b) != 777 {
		t.Error("post-restore write lost")
	}
}
