package inspect

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"mmdb/internal/engine"
	"mmdb/internal/storage"
	"mmdb/internal/wal"
)

// buildDatabase creates a small database directory with committed
// transactions, a checkpoint, a post-checkpoint tail, and a crash.
func buildDatabase(t *testing.T) (string, storage.Config) {
	t.Helper()
	dir := t.TempDir()
	cfg := storage.Config{NumRecords: 256, RecordBytes: 32, SegmentBytes: 256}
	e, err := engine.Open(engine.Params{
		Dir:        dir,
		Storage:    cfg,
		Algorithm:  engine.COUCopy,
		SyncCommit: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	val := func(v uint64) []byte {
		b := make([]byte, 8)
		binary.LittleEndian.PutUint64(b, v)
		return b
	}
	for i := 0; i < 20; i++ {
		i := i
		if err := e.Exec(func(tx *engine.Txn) error {
			return tx.Write(uint64(i), val(uint64(i+1)))
		}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := e.Exec(func(tx *engine.Txn) error {
		return tx.ApplyOp(5, engine.OpAdd64, engine.Add64Operand(100))
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.Crash(); err != nil {
		t.Fatal(err)
	}
	return dir, cfg
}

func TestProbeGeometry(t *testing.T) {
	dir, cfg := buildDatabase(t)
	geo, err := ProbeGeometry(dir)
	if err != nil {
		t.Fatal(err)
	}
	if geo.NumSegments != cfg.NumSegments() || geo.SegmentBytes != cfg.SegmentBytes {
		t.Errorf("probe = %+v, want %d×%d", geo, cfg.NumSegments(), cfg.SegmentBytes)
	}
	if _, err := ProbeGeometry(t.TempDir()); err == nil {
		t.Error("probe of empty dir succeeded")
	}
}

func TestInfo(t *testing.T) {
	dir, _ := buildDatabase(t)
	di, err := Info(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !di.HasRecoverySource || di.RecoveryCheckpoint.ID != 1 {
		t.Errorf("recovery source = %+v", di)
	}
	if di.Copies[0].Algorithm != "COUCOPY" || !di.Copies[0].Complete {
		t.Errorf("copy 0 info = %+v", di.Copies[0])
	}
	if di.Log == nil {
		t.Fatal("log info missing")
	}
	if di.Log.Counts[wal.TypeCommit] == 0 || di.Log.Counts[wal.TypeLogicalUpdate] == 0 {
		t.Errorf("log counts = %v", di.Log.Counts)
	}
	if di.Log.TornBytes != 0 {
		t.Errorf("unexpected torn bytes: %d", di.Log.TornBytes)
	}
}

func TestVerifyCleanAndCorrupt(t *testing.T) {
	dir, _ := buildDatabase(t)
	res, err := Verify(dir)
	if err != nil {
		t.Fatal(err)
	}
	if res.CopySegments[0] == 0 {
		t.Error("no written segments found in copy 0")
	}

	// Corrupt a byte inside the first written slot of copy 0.
	f, err := os.OpenFile(filepath.Join(dir, "backup0.db"), os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xEE}, 5); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := Verify(dir); err == nil {
		t.Error("corruption not detected")
	}
}

func TestIterateLog(t *testing.T) {
	dir, _ := buildDatabase(t)
	var types []wal.RecordType
	n, err := IterateLog(dir, 0, 0, func(e wal.Entry) error {
		types = append(types, e.Rec.Type)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != len(types) || n == 0 {
		t.Fatalf("iterated %d records", n)
	}
	// Limit honored.
	n2, err := IterateLog(dir, 0, 3, func(wal.Entry) error { return nil })
	if err != nil || n2 != 3 {
		t.Errorf("limit: n=%d err=%v", n2, err)
	}
	// Callback error propagates.
	boom := errors.New("boom")
	if _, err := IterateLog(dir, 0, 0, func(wal.Entry) error { return boom }); !errors.Is(err, boom) {
		t.Errorf("callback error = %v", err)
	}
}

func TestDryRunLeavesDirectoryIntact(t *testing.T) {
	dir, cfg := buildDatabase(t)
	before, err := os.ReadFile(filepath.Join(dir, "redo.log"))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := DryRun(dir, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CheckpointID != 1 || rep.LogicalReplayed != 1 {
		t.Errorf("dry run report = %+v", rep)
	}
	after, err := os.ReadFile(filepath.Join(dir, "redo.log"))
	if err != nil {
		t.Fatal(err)
	}
	if len(before) != len(after) {
		t.Error("dry run modified the original log")
	}
	// The original directory is still recoverable for real.
	e, _, err := engine.Recover(engine.Params{
		Dir: dir, Storage: cfg, Algorithm: engine.COUCopy,
	})
	if err != nil {
		t.Fatalf("real recovery after dry run: %v", err)
	}
	e.Close()

	bad := cfg
	bad.SegmentBytes = 100 // invalid geometry
	if _, err := DryRun(dir, bad, nil); err == nil {
		t.Error("invalid geometry accepted")
	}
}
