package inspect

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"path/filepath"

	"mmdb/internal/backup"
	"mmdb/internal/wal"
)

// Archival dump and restore — the paper's Section 2.7 observes that
// "dumping of the backup database (e.g., to tape) may be easier [in a
// MMDBMS] because of the more predictable disk access patterns". An
// archive is a self-contained snapshot of the most recent complete
// checkpoint plus exactly the log suffix its recovery needs; restoring it
// into an empty directory yields a recoverable database equal to the
// source at archive time.
//
// Format (little-endian):
//
//	magic "MMDBARC1"
//	u32 header length, JSON archiveHeader
//	per written segment: u32 index, segment bytes (length from geometry)
//	u32 0xFFFFFFFF end-of-segments sentinel
//	u64 log suffix length, raw log bytes [ScanStartLSN, log valid end)
const archiveMagic = "MMDBARC1"

const segSentinel = ^uint32(0)

type archiveHeader struct {
	Geometry     Geometry              `json:"geometry"`
	Checkpoint   backup.CheckpointInfo `json:"checkpoint"`
	LogStart     wal.LSN               `json:"log_start"`
	LogEnd       wal.LSN               `json:"log_end"`
	SegmentCount int                   `json:"segment_count"`
}

// ErrNotArchive reports a stream that is not an mmdb archive.
var ErrNotArchive = errors.New("inspect: not an mmdb archive")

// Archive writes a self-contained dump of dir's most recent complete
// checkpoint and the log suffix recovery needs. It returns the number of
// segments and log bytes written.
func Archive(dir string, w io.Writer) (segments int, logBytes int64, err error) {
	geo, err := ProbeGeometry(dir)
	if err != nil {
		return 0, 0, err
	}
	bs, err := backup.Open(dir, geo.NumSegments, geo.SegmentBytes)
	if err != nil {
		return 0, 0, err
	}
	defer bs.Close() //nolint:errcheckwal // read-only inspection handle
	copyIdx, info, err := bs.Latest()
	if err != nil {
		return 0, 0, fmt.Errorf("inspect: archive: %w", err)
	}

	r, err := wal.OpenReader(filepath.Join(dir, logFileName))
	if err != nil {
		return 0, 0, err
	}
	defer r.Close() //nolint:errcheckwal // read-only inspection handle
	validEnd, err := r.ValidEnd(info.ScanStartLSN)
	if err != nil {
		return 0, 0, err
	}

	// Count written segments first (the header carries the count).
	written := 0
	err = bs.ReadAll(copyIdx, func(_ int, wb uint64, _ []byte) error {
		if wb != 0 {
			written++
		}
		return nil
	})
	if err != nil {
		return 0, 0, err
	}

	hdr := archiveHeader{
		Geometry:     geo,
		Checkpoint:   info,
		LogStart:     info.ScanStartLSN,
		LogEnd:       validEnd,
		SegmentCount: written,
	}
	raw, err := json.Marshal(&hdr)
	if err != nil {
		return 0, 0, err
	}
	if _, err := io.WriteString(w, archiveMagic); err != nil {
		return 0, 0, err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(raw))); err != nil {
		return 0, 0, err
	}
	if _, err := w.Write(raw); err != nil {
		return 0, 0, err
	}

	err = bs.ReadAll(copyIdx, func(idx int, wb uint64, data []byte) error {
		if wb == 0 {
			return nil
		}
		if err := binary.Write(w, binary.LittleEndian, uint32(idx)); err != nil {
			return err
		}
		if _, err := w.Write(data); err != nil {
			return err
		}
		segments++
		return nil
	})
	if err != nil {
		return segments, 0, err
	}
	if err := binary.Write(w, binary.LittleEndian, segSentinel); err != nil {
		return segments, 0, err
	}

	logBytes = validEnd.Sub(info.ScanStartLSN)
	if err := binary.Write(w, binary.LittleEndian, uint64(logBytes)); err != nil {
		return segments, 0, err
	}
	sec, err := r.SectionReader(info.ScanStartLSN, validEnd)
	if err != nil {
		return segments, 0, err
	}
	if n, err := io.Copy(w, sec); err != nil {
		return segments, n, err
	}
	return segments, logBytes, nil
}

// RestoreArchive reads an archive and materializes a recoverable database
// directory at dir (which must not already hold one).
func RestoreArchive(src io.Reader, dir string) (ri *RestoreInfo, err error) {
	magic := make([]byte, len(archiveMagic))
	if _, err := io.ReadFull(src, magic); err != nil || string(magic) != archiveMagic {
		return nil, ErrNotArchive
	}
	var hlen uint32
	if err := binary.Read(src, binary.LittleEndian, &hlen); err != nil {
		return nil, ErrNotArchive
	}
	if hlen > 1<<20 {
		return nil, ErrNotArchive
	}
	raw := make([]byte, hlen)
	if _, err := io.ReadFull(src, raw); err != nil {
		return nil, ErrNotArchive
	}
	var hdr archiveHeader
	if err := json.Unmarshal(raw, &hdr); err != nil {
		return nil, fmt.Errorf("inspect: restore: corrupt header: %w", err)
	}
	if hdr.Geometry.NumSegments <= 0 || hdr.Geometry.SegmentBytes <= 0 || !hdr.Checkpoint.Complete {
		return nil, errors.New("inspect: restore: implausible archive header")
	}

	bs, err := backup.Open(dir, hdr.Geometry.NumSegments, hdr.Geometry.SegmentBytes)
	if err != nil {
		return nil, err
	}
	// The restore writes through bs, so its close error is part of the
	// result: a restore that cannot persist its metadata did not succeed.
	defer func() {
		if cerr := bs.Close(); cerr != nil {
			ri, err = nil, errors.Join(err, cerr)
		}
	}()
	if _, _, err := bs.Latest(); err == nil {
		return nil, errors.New("inspect: restore: directory already holds a database")
	}

	target := 0
	if err := bs.BeginCheckpoint(target, hdr.Checkpoint); err != nil {
		return nil, err
	}
	buf := make([]byte, hdr.Geometry.SegmentBytes)
	restored := 0
	for {
		var idx uint32
		if err := binary.Read(src, binary.LittleEndian, &idx); err != nil {
			return nil, fmt.Errorf("inspect: restore: truncated segment stream: %w", err)
		}
		if idx == segSentinel {
			break
		}
		if _, err := io.ReadFull(src, buf); err != nil {
			return nil, fmt.Errorf("inspect: restore: segment %d: %w", idx, err)
		}
		if err := bs.WriteSegment(target, int(idx), hdr.Checkpoint.ID, buf); err != nil { // walorder:stable-tail restore replays an archived complete checkpoint whose log was durable before the archive was written

			return nil, err
		}
		restored++
	}
	if restored != hdr.SegmentCount {
		return nil, fmt.Errorf("inspect: restore: %d segments, header says %d", restored, hdr.SegmentCount)
	}

	var logLen uint64
	if err := binary.Read(src, binary.LittleEndian, &logLen); err != nil {
		return nil, fmt.Errorf("inspect: restore: missing log: %w", err)
	}
	if int64(logLen) != hdr.LogEnd.Sub(hdr.LogStart) {
		return nil, errors.New("inspect: restore: log length disagrees with header")
	}
	n, err := wal.CreateAt(filepath.Join(dir, logFileName), hdr.LogStart,
		io.LimitReader(src, int64(logLen)))
	if err != nil {
		return nil, err
	}
	if n != int64(logLen) {
		return nil, fmt.Errorf("inspect: restore: log truncated: %d of %d bytes", n, logLen)
	}
	if err := bs.FinishCheckpoint(target, hdr.Checkpoint.EndLSN,
		hdr.Checkpoint.SegmentsWritten, hdr.Checkpoint.BytesWritten); err != nil {
		return nil, err
	}
	return &RestoreInfo{
		Checkpoint: hdr.Checkpoint,
		Segments:   restored,
		LogBytes:   int64(logLen),
	}, nil
}

// RestoreInfo summarizes a RestoreArchive.
type RestoreInfo struct {
	Checkpoint backup.CheckpointInfo
	Segments   int
	LogBytes   int64
}
