// Command mmdblint is the repository's invariant-checking vet tool. It
// bundles the custom analyzers from lint/... behind go vet's vet-tool
// protocol:
//
//	go build -o bin/mmdblint ./cmd/mmdblint
//	go vet -vettool=bin/mmdblint ./...
//
// or via the Makefile: make lint. Individual analyzers can be selected
// with their flags, e.g. go vet -vettool=bin/mmdblint -lockcheck ./...
//
// Analyzers:
//
//	lockcheck    guarded_by-annotated fields accessed only under their mutex
//	detcheck     determinism of sim, analytic, and internal/simdisk
//	errcheckwal  no discarded errors from wal/storage/backup/engine calls
//	lsncheck     LSN ordering/arithmetic through typed helpers only
package main

import (
	"mmdb/lint/analysis/unitchecker"
	"mmdb/lint/detcheck"
	"mmdb/lint/errcheckwal"
	"mmdb/lint/lockcheck"
	"mmdb/lint/lsncheck"
)

func main() {
	unitchecker.Main(
		lockcheck.Analyzer,
		detcheck.Analyzer,
		errcheckwal.Analyzer,
		lsncheck.Analyzer,
	)
}
