// Command mmdblint is the repository's invariant-checking vet tool. It
// bundles the custom analyzers from lint/... behind go vet's vet-tool
// protocol:
//
//	go build -o bin/mmdblint ./cmd/mmdblint
//	go vet -vettool=bin/mmdblint ./...
//
// or via the Makefile: make lint. Individual analyzers can be selected
// with their flags, e.g. go vet -vettool=bin/mmdblint -lockcheck ./...
// Machine-readable output is available with -json (see
// lint/analysis/unitchecker).
//
// Analyzers:
//
//	lockcheck    guarded_by-annotated fields accessed only under their mutex
//	detcheck     determinism of sim, analytic, and internal/simdisk
//	errcheckwal  no discarded errors from wal/storage/backup/engine calls
//	lsncheck     LSN ordering/arithmetic through typed helpers only
//	walorder     disk writes covered by a durable WAL position on every path
//	lockorder    cross-package lock-acquisition graph: cycles, level violations
//	unlockcheck  every acquired mutex released on all paths out of a function
//	goleakcheck  every go statement matched by a join on all paths, or annotated
//	atomiccheck  atomic_only / sync-atomic-typed fields accessed only atomically
//	ctxcheck     context flows: no Background in internal code, blocking loops
//	             reachable from ctx-taking entry points consult the ctx
//	alloccheck   functions reachable from perf:hotpath roots are
//	             allocation-free per lint/escape, or reasoned alloc:allowed
//
// walorder, lockorder, unlockcheck, and goleakcheck are flow-sensitive:
// they run a worklist dataflow over the lint/cfg control-flow graphs.
// The cross-package analyzers (lockcheck, lockorder, atomiccheck,
// ctxcheck, alloccheck) exchange facts through .vetx files, so an
// annotation in internal/wal constrains code in internal/engine;
// ctxcheck's and alloccheck's facts carry a lint/callgraph slice per
// package, giving them an interprocedural view of which blocking loops
// a context can reach and which allocation sites a hot path can reach;
// alloccheck's facts additionally carry lint/escape parameter-leak
// vectors, so a record handed to a non-leaking callee in another
// package is proved stack-resident.
package main

import (
	"mmdb/lint/alloccheck"
	"mmdb/lint/analysis/unitchecker"
	"mmdb/lint/atomiccheck"
	"mmdb/lint/ctxcheck"
	"mmdb/lint/detcheck"
	"mmdb/lint/errcheckwal"
	"mmdb/lint/goleakcheck"
	"mmdb/lint/lockcheck"
	"mmdb/lint/lockorder"
	"mmdb/lint/lsncheck"
	"mmdb/lint/unlockcheck"
	"mmdb/lint/walorder"
)

func main() {
	unitchecker.Main(
		lockcheck.Analyzer,
		detcheck.Analyzer,
		errcheckwal.Analyzer,
		lsncheck.Analyzer,
		walorder.Analyzer,
		lockorder.Analyzer,
		unlockcheck.Analyzer,
		goleakcheck.Analyzer,
		atomiccheck.Analyzer,
		ctxcheck.Analyzer,
		alloccheck.Analyzer,
	)
}
