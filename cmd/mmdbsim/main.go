// Command mmdbsim runs the discrete-event checkpointing simulator (the
// "testbed" of the paper's Section 5 future work) at one operating point
// and prints its measurements next to the analytic model's predictions.
//
// Example:
//
//	mmdbsim -alg 2CCOPY -lambda 500 -interval 200 -retry correlated
package main

import (
	"flag"
	"fmt"
	"os"

	"mmdb/analytic"
	"mmdb/sim"
)

var (
	algName     = flag.String("alg", "COUCOPY", "checkpoint algorithm (FUZZYCOPY, FASTFUZZY, 2CFLUSH, 2CCOPY, COUFLUSH, COUCOPY)")
	lambda      = flag.Float64("lambda", 0, "transaction arrival rate (0 = paper default)")
	nru         = flag.Float64("nru", 0, "updates per transaction (0 = paper default)")
	sseg        = flag.Float64("sseg", 0, "segment size in words (0 = paper default)")
	sdb         = flag.Float64("sdb", 0, "database size in words (0 = paper default)")
	ndisks      = flag.Float64("disks", 0, "backup disks (0 = paper default)")
	interval    = flag.Float64("interval", 0, "checkpoint interval in seconds (0 = as fast as possible)")
	full        = flag.Bool("full", false, "full (not partial) checkpoints")
	stable      = flag.Bool("stable", false, "stable log tail")
	retry       = flag.String("retry", "independent", "two-color retry model: independent or correlated")
	seed        = flag.Int64("seed", 1, "random seed")
	checkpoints = flag.Int("checkpoints", 5, "measured checkpoint intervals")
	warmup      = flag.Int("warmup", 2, "warm-up checkpoint intervals")
	skew        = flag.Float64("skew", 0, "Zipf skew over segments (>1; 0 = uniform, the paper's model)")
	logical     = flag.Bool("logical", false, "logical (operation) logging — requires a COU algorithm")
)

func main() {
	flag.Parse()
	alg, err := analytic.Parse(*algName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	p := analytic.DefaultParams()
	if *lambda > 0 {
		p.Lambda = *lambda
	}
	if *nru > 0 {
		p.NRU = *nru
	}
	if *sseg > 0 {
		p.SSeg = *sseg
	}
	if *sdb > 0 {
		p.SDB = *sdb
	}
	if *ndisks > 0 {
		p.NDisks = *ndisks
	}
	o := analytic.Options{
		Algorithm:       alg,
		Full:            *full,
		StableTail:      *stable || alg.RequiresStableTail(),
		IntervalSeconds: *interval,
		LogicalLogging:  *logical,
	}
	switch *retry {
	case "independent":
		o.Retry = analytic.IndependentRetries
	case "correlated":
		o.Retry = analytic.CorrelatedRetries
	default:
		fmt.Fprintf(os.Stderr, "mmdbsim: unknown retry model %q\n", *retry)
		os.Exit(2)
	}

	simRes, err := sim.Run(sim.Config{
		Params: p, Options: o, Seed: *seed,
		Checkpoints: *checkpoints, Warmup: *warmup,
		Skew: *skew,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mmdbsim:", err)
		os.Exit(1)
	}
	anaRes, err := analytic.Evaluate(p, o)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mmdbsim:", err)
		os.Exit(1)
	}

	fmt.Printf("algorithm: %v  (full=%v stable=%v interval=%vs retry=%s)\n",
		alg, o.Full, o.StableTail, o.IntervalSeconds, *retry)
	fmt.Printf("load: lambda=%.0f txn/s, N_ru=%.0f, S_seg=%.0f words, N_seg=%.0f, disks=%.0f\n\n",
		p.Lambda, p.NRU, p.SSeg, p.NumSegments(), p.NDisks)
	row := func(name, simVal, anaVal string) { fmt.Printf("%-28s %14s %14s\n", name, simVal, anaVal) }
	row("", "simulator", "model")
	row("checkpoint duration (s)", f1(simRes.MeanDurationSeconds), f1(anaRes.DurationSeconds))
	row("checkpointer active (s)", f1(simRes.MeanActiveSeconds), f1(anaRes.ActiveSeconds))
	row("duty cycle", f3(simRes.DutyCycle), f3(anaRes.DutyCycle))
	row("segments per checkpoint", f0(simRes.SegmentsPerCheckpoint), f0(anaRes.SegmentsPerCheckpoint))
	row("overhead (instr/txn)", f0(simRes.OverheadPerTxn), f0(anaRes.OverheadPerTxn))
	row("  synchronous", f0(simRes.SyncOverheadPerTxn), f0(anaRes.SyncOverheadPerTxn))
	row("  asynchronous", f0(simRes.AsyncOverheadPerTxn), f0(anaRes.AsyncOverheadPerTxn))
	row("p_restart", f3(simRes.PRestart), f3(anaRes.PRestart))
	row("COU copies per checkpoint", f0(simRes.COUCopiesPerCkpt), f0(anaRes.COUCopiesPerCkpt))
	row("log rate (words/s)", f0(simRes.LogWordsPerSecond), f0(anaRes.LogWordsPerSecond))
	row("recovery time (s)", f1(simRes.RecoverySeconds), f1(anaRes.RecoverySeconds))
	row("  backup read (s)", f1(simRes.BackupReadSeconds), f1(anaRes.BackupReadSeconds))
	row("  log read (s)", f1(simRes.LogReadSeconds), f1(anaRes.LogReadSeconds))
	fmt.Printf("\nsimulated: %d committed transactions, %d attempts, %d color aborts over %d checkpoints\n",
		simRes.TxnsCommitted, simRes.TxnAttempts, simRes.ColorAborts, *checkpoints)
}

func f0(v float64) string { return fmt.Sprintf("%.0f", v) }
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
