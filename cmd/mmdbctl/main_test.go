package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mmdb/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenHandler serves a registry with fixed, deterministic contents so
// the stats JSON output can be pinned byte-for-byte.
func goldenHandler() (*obs.Registry, *obs.Tracer, *obs.SpanTracer, *obs.Watchdog) {
	reg := obs.NewRegistry()
	reg.Counter("mmdb_wal_records_total", "records appended to the log").Add(42)
	reg.Counter("mmdb_ckpt_passes_total", "completed checkpoint passes").Add(3)
	reg.Gauge("mmdb_txn_active", "transactions in flight").Set(2)
	h := reg.Histogram("mmdb_commit_latency_seconds", "commit latency", obs.ScaleNanosToSeconds)
	for _, ns := range []uint64{1_000, 2_000, 4_000, 1_000_000} {
		h.Observe(ns)
	}
	spans := obs.NewSpanTracer(64, 1)
	tracer := obs.NewTracer(64)
	return reg, tracer, spans, obs.NewWatchdog(spans)
}

// TestStatsJSONGolden pins the exact bytes `mmdbctl stats -format json`
// prints for a known registry. The JSON exposition sorts map keys and
// uses fixed indentation, so the output is fully deterministic.
func TestStatsJSONGolden(t *testing.T) {
	reg, tracer, spans, wd := goldenHandler()
	srv := httptest.NewServer(obs.Handler(reg, tracer, spans, wd))
	defer srv.Close()

	var buf bytes.Buffer
	if err := stats(&buf, srv.URL, "json", false, 0); err != nil {
		t.Fatalf("stats: %v", err)
	}

	golden := filepath.Join("testdata", "stats.json.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("stats -format json output diverged from golden.\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}

	// The golden bytes must also be well-formed JSON with the expected
	// top-level shape, so the golden file cannot silently pin garbage.
	var doc struct {
		Counters   map[string]float64        `json:"counters"`
		Gauges     map[string]float64        `json:"gauges"`
		Histograms map[string]map[string]any `json:"histograms"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if doc.Counters["mmdb_wal_records_total"] != 42 {
		t.Errorf("counter mmdb_wal_records_total = %v, want 42", doc.Counters["mmdb_wal_records_total"])
	}
	if _, ok := doc.Histograms["mmdb_commit_latency_seconds"]; !ok {
		t.Error("histogram mmdb_commit_latency_seconds missing from JSON output")
	}
}

// TestStatsRejectsUnknownFormat pins the client-side format validation.
func TestStatsRejectsUnknownFormat(t *testing.T) {
	var buf bytes.Buffer
	if err := stats(&buf, "http://localhost:0", "xml", false, 0); err == nil {
		t.Fatal("stats accepted -format xml")
	}
	if err := stats(&buf, "", "prom", false, 0); err == nil {
		t.Fatal("stats accepted empty -addr")
	}
}

// TestTraceSmoke drives `mmdbctl trace` against a handler whose span
// ring holds a small parented tree plus a lifecycle instant, and checks
// the written file is valid Chrome trace-event JSON: complete ("X")
// span events carrying parent links and an instant ("i") event.
func TestTraceSmoke(t *testing.T) {
	reg, tracer, spans, wd := goldenHandler()
	root := spans.Begin(obs.SpanCommit, obs.SpanNone, 7, 0)
	child := spans.Begin(obs.SpanWALAppend, root, 7, 11)
	spans.End(child)
	spans.End(root)
	tracer.Record(obs.EvTxnCommit, 7, 11, 0)
	srv := httptest.NewServer(obs.Handler(reg, tracer, spans, wd))
	defer srv.Close()

	out := filepath.Join(t.TempDir(), "trace.json")
	var buf bytes.Buffer
	if err := trace(&buf, srv.URL, out); err != nil {
		t.Fatalf("trace: %v", err)
	}
	if !strings.Contains(buf.String(), out) {
		t.Errorf("confirmation line %q does not mention output file %s", buf.String(), out)
	}

	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Ts   float64           `json:"ts"`
			Dur  float64           `json:"dur"`
			Tid  uint64            `json:"tid"`
			Args map[string]uint64 `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace output is not valid Chrome trace JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ns" {
		t.Errorf("displayTimeUnit = %q, want ns", doc.DisplayTimeUnit)
	}
	var complete, instants, childSpans int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			complete++
			if ev.Args["parent"] != uint64(obs.SpanNone) {
				childSpans++
				if ev.Args["parent"] != uint64(root) {
					t.Errorf("child span parent arg = %d, want %d", ev.Args["parent"], root)
				}
				if ev.Tid != uint64(root) {
					t.Errorf("child span on track %d, want root track %d", ev.Tid, root)
				}
			}
		case "i":
			instants++
		}
	}
	if complete != 2 || childSpans != 1 || instants != 1 {
		t.Errorf("trace events: %d complete (%d children), %d instants; want 2 (1), 1",
			complete, childSpans, instants)
	}
}

// TestTraceStdout checks "-o -" streams the raw trace JSON to the writer
// instead of a file.
func TestTraceStdout(t *testing.T) {
	reg, tracer, spans, wd := goldenHandler()
	spans.End(spans.Begin(obs.SpanCheckpoint, obs.SpanNone, 1, 2))
	srv := httptest.NewServer(obs.Handler(reg, tracer, spans, wd))
	defer srv.Close()

	var buf bytes.Buffer
	if err := trace(&buf, srv.URL, "-"); err != nil {
		t.Fatalf("trace -o -: %v", err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("stdout trace is not valid JSON: %v", err)
	}
	if _, ok := doc["traceEvents"]; !ok {
		t.Error("stdout trace missing traceEvents")
	}
}
