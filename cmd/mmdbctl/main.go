// Command mmdbctl inspects and verifies an mmdb database directory
// offline (the database must not be open). It is a thin CLI over
// internal/inspect.
//
// Subcommands:
//
//	mmdbctl info   -dir DIR
//	    Print backup checkpoint metadata and a log summary.
//	mmdbctl verify -dir DIR
//	    Checksum-verify both backup copies and validate the log chain.
//	mmdbctl log    -dir DIR [-from LSN] [-limit N]
//	    Dump log records in order.
//	mmdbctl dryrun -dir DIR -records N -recbytes B [-segbytes S]
//	    Run recovery against a scratch copy of the directory and report
//	    what it would do.
//	mmdbctl archive -dir DIR -out FILE
//	    Dump the latest complete checkpoint plus the needed log suffix to
//	    a self-contained archive file.
//	mmdbctl restore -in FILE -dir NEWDIR
//	    Materialize an archive as a recoverable database directory.
//	mmdbctl stats -addr URL [-watch] [-interval D] [-format prom|json]
//	    Fetch and print live metrics from a running process serving
//	    DB.Metrics().
//	mmdbctl trace -addr URL [-o FILE]
//	    Fetch the latency-attribution span ring and lifecycle events from
//	    a running process as Chrome trace-event JSON, ready to load in
//	    chrome://tracing or Perfetto ("-o -" writes to stdout).
//
// stats and trace talk to a live process over HTTP; every other
// subcommand works offline on a database directory.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"text/tabwriter"
	"time"

	"mmdb"
	"mmdb/internal/inspect"
	"mmdb/internal/storage"
	"mmdb/internal/wal"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	dir := fs.String("dir", "", "database directory (required)")
	records := fs.Int("records", 0, "number of records (required for dryrun)")
	recBytes := fs.Int("recbytes", 0, "record size in bytes (required for dryrun)")
	segBytes := fs.Int("segbytes", 0, "segment size in bytes (0 = 256 records)")
	from := fs.Uint64("from", 0, "log: first LSN to dump")
	limit := fs.Int("limit", 50, "log: maximum records to dump (0 = all)")
	outFile := fs.String("out", "", "archive: output file")
	inFile := fs.String("in", "", "restore: input archive file")
	addr := fs.String("addr", "", "stats: metrics URL of a running process (e.g. http://localhost:6060/metrics)")
	watch := fs.Bool("watch", false, "stats: refresh continuously")
	interval := fs.Duration("interval", 2*time.Second, "stats: refresh interval with -watch")
	format := fs.String("format", "prom", "stats: output format, prom or json")
	traceOut := fs.String("o", "trace.json", `trace: output file ("-" = stdout)`)
	_ = fs.Parse(os.Args[2:])
	if cmd == "stats" || cmd == "trace" {
		// stats and trace talk to a live process over HTTP, not to a
		// directory.
		var err error
		switch cmd {
		case "stats":
			err = stats(os.Stdout, *addr, *format, *watch, *interval)
		case "trace":
			err = trace(os.Stdout, *addr, *traceOut)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "mmdbctl %s: %v\n", cmd, err)
			os.Exit(1)
		}
		return
	}
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "mmdbctl: -dir is required")
		os.Exit(2)
	}

	var err error
	switch cmd {
	case "archive":
		err = archive(*dir, *outFile)
	case "restore":
		err = restore(*inFile, *dir)
	case "info":
		err = info(*dir)
	case "verify":
		err = verify(*dir)
	case "log":
		err = dumpLog(*dir, wal.LSN(*from), *limit)
	case "dryrun":
		err = dryrun(*dir, *records, *recBytes, *segBytes)
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "mmdbctl %s: %v\n", cmd, err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: mmdbctl {info|verify|log|dryrun|archive|restore} -dir DIR [flags]")
	fmt.Fprintln(os.Stderr, "       mmdbctl stats -addr URL [-watch] [-interval D] [-format prom|json]")
	fmt.Fprintln(os.Stderr, "       mmdbctl trace -addr URL [-o FILE]")
	os.Exit(2)
}

// fetchURL GETs url and copies the body to w.
func fetchURL(w io.Writer, url string) error {
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("%s: %s: %s", url, resp.Status, body)
	}
	_, err = io.Copy(w, resp.Body)
	return err
}

// stats fetches the metrics endpoint once, or repeatedly with -watch
// (clearing the screen between refreshes, like watch(1)). Single
// fetches write to w; watch mode writes to stdout.
func stats(w io.Writer, addr, format string, watch bool, interval time.Duration) error {
	if addr == "" {
		return fmt.Errorf("stats needs -addr (a URL serving DB.Metrics())")
	}
	if format != "prom" && format != "json" {
		return fmt.Errorf("unknown -format %q (want prom or json)", format)
	}
	url := addr + "?format=" + format
	if !watch {
		return fetchURL(w, url)
	}
	if interval <= 0 {
		interval = 2 * time.Second
	}
	for {
		// ANSI clear screen + home, as watch(1) does.
		fmt.Print("\x1b[2J\x1b[H")
		fmt.Printf("mmdbctl stats %s — every %v (^C to stop)\n\n", addr, interval)
		if err := fetchURL(os.Stdout, url); err != nil {
			fmt.Fprintf(os.Stderr, "fetch: %v\n", err)
		}
		time.Sleep(interval)
	}
}

// trace fetches the span ring and lifecycle events as Chrome trace-event
// JSON and writes them to out ("-" or empty means stdout, i.e. w).
func trace(w io.Writer, addr, out string) error {
	if addr == "" {
		return fmt.Errorf("trace needs -addr (a URL serving DB.Metrics())")
	}
	url := addr + "?format=chrome"
	if out == "" || out == "-" {
		return fetchURL(w, url)
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	ferr := fetchURL(f, url)
	if cerr := f.Close(); ferr == nil {
		ferr = cerr
	}
	if ferr != nil {
		return ferr
	}
	fi, err := os.Stat(out)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %d bytes of Chrome trace JSON to %s (open in chrome://tracing or https://ui.perfetto.dev)\n",
		fi.Size(), out)
	return nil
}

func archive(dir, out string) error {
	if out == "" {
		return fmt.Errorf("archive needs -out")
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	segs, logBytes, err := inspect.Archive(dir, f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	fi, err := os.Stat(out)
	if err != nil {
		return err
	}
	fmt.Printf("archived %d segments and %.1f MB of log to %s (%.1f MB total)\n",
		segs, float64(logBytes)/1e6, out, float64(fi.Size())/1e6)
	return nil
}

func restore(in, dir string) error {
	if in == "" {
		return fmt.Errorf("restore needs -in")
	}
	f, err := os.Open(in)
	if err != nil {
		return err
	}
	defer f.Close()
	info, err := inspect.RestoreArchive(f, dir)
	if err != nil {
		return err
	}
	fmt.Printf("restored checkpoint %d (%s): %d segments, %.1f MB of log into %s\n",
		info.Checkpoint.ID, info.Checkpoint.Algorithm, info.Segments,
		float64(info.LogBytes)/1e6, dir)
	fmt.Println("recover it by opening the directory with mmdb.Recover / OpenOrRecover")
	return nil
}

func info(dir string) error {
	di, err := inspect.Info(dir)
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "backup geometry:\t%d segments × %d bytes (%.1f MB per copy)\n",
		di.Geometry.NumSegments, di.Geometry.SegmentBytes,
		float64(di.Geometry.NumSegments)*float64(di.Geometry.SegmentBytes)/1e6)
	for c, ci := range di.Copies {
		if ci.ID == 0 {
			fmt.Fprintf(w, "copy %d:\tnever checkpointed\n", c)
			continue
		}
		state := "COMPLETE"
		if !ci.Complete {
			state = "incomplete (in progress or crashed)"
		}
		kind := "partial"
		if ci.Full {
			kind = "full"
		}
		fmt.Fprintf(w, "copy %d:\tcheckpoint %d (%s, %s)\t%s\n", c, ci.ID, ci.Algorithm, kind, state)
		fmt.Fprintf(w, "\tbegin LSN %d, scan start %d, end LSN %d, timestamp %d\n",
			ci.BeginLSN, ci.ScanStartLSN, ci.EndLSN, ci.Timestamp)
		fmt.Fprintf(w, "\t%d segments written, %.1f MB\n", ci.SegmentsWritten, float64(ci.BytesWritten)/1e6)
	}
	if di.HasRecoverySource {
		fmt.Fprintf(w, "recovery would use:\tcopy %d (checkpoint %d), redo scan from LSN %d\n",
			di.RecoveryCopy, di.RecoveryCheckpoint.ID, di.RecoveryCheckpoint.ScanStartLSN)
	} else {
		fmt.Fprintf(w, "recovery would use:\tno complete checkpoint — full log replay\n")
	}
	if err := w.Flush(); err != nil {
		return err
	}

	if di.Log == nil {
		fmt.Println("log: missing")
		return nil
	}
	fmt.Printf("log: base LSN %d, valid end %d (%.1f MB live)\n",
		di.Log.Base, di.Log.ValidEnd, float64(di.Log.ValidEnd.Sub(di.Log.Base))/1e6)
	if di.Log.TornBytes > 0 {
		fmt.Printf("log: %d torn trailing bytes (discarded by recovery)\n", di.Log.TornBytes)
	}
	for _, ty := range []wal.RecordType{wal.TypeUpdate, wal.TypeLogicalUpdate, wal.TypeCommit,
		wal.TypeAbort, wal.TypeBeginCheckpoint, wal.TypeEndCheckpoint} {
		if n := di.Log.Counts[ty]; n > 0 {
			fmt.Printf("  %-18s %d\n", ty.String(), n)
		}
	}
	return nil
}

func verify(dir string) error {
	res, err := inspect.Verify(dir)
	if err != nil {
		return err
	}
	for c, n := range res.CopySegments {
		fmt.Printf("copy %d: %d written segments, all checksums valid\n", c, n)
	}
	total := 0
	for _, n := range res.Log.Counts {
		total += n
	}
	fmt.Printf("log: %d valid records up to LSN %d\n", total, res.Log.ValidEnd)
	if res.Log.TornBytes > 0 {
		fmt.Printf("log: %d trailing bytes are torn (will be discarded by recovery)\n", res.Log.TornBytes)
	}
	return nil
}

func dumpLog(dir string, from wal.LSN, limit int) error {
	n, err := inspect.IterateLog(dir, from, limit, func(e wal.Entry) error {
		rec := e.Rec
		switch rec.Type {
		case wal.TypeUpdate:
			fmt.Printf("%10d  update          txn=%d rec=%d len=%d\n", e.LSN, rec.TxnID, rec.RecordID, len(rec.Data))
		case wal.TypeLogicalUpdate:
			fmt.Printf("%10d  logical-update  txn=%d rec=%d op=%d len=%d\n", e.LSN, rec.TxnID, rec.RecordID, rec.OpCode, len(rec.Data))
		case wal.TypeCommit:
			fmt.Printf("%10d  commit          txn=%d\n", e.LSN, rec.TxnID)
		case wal.TypeAbort:
			fmt.Printf("%10d  abort           txn=%d\n", e.LSN, rec.TxnID)
		case wal.TypeBeginCheckpoint:
			fmt.Printf("%10d  begin-ckpt      id=%d ts=%d copy=%d active=%d\n", e.LSN, rec.CheckpointID, rec.Timestamp, rec.TargetCopy, len(rec.ActiveTxns))
		case wal.TypeEndCheckpoint:
			fmt.Printf("%10d  end-ckpt        id=%d copy=%d\n", e.LSN, rec.CheckpointID, rec.TargetCopy)
		default:
			fmt.Printf("%10d  %v\n", e.LSN, rec.Type)
		}
		return nil
	})
	if err != nil {
		return err
	}
	fmt.Printf("(%d records shown)\n", n)
	return nil
}

func dryrun(dir string, records, recBytes, segBytes int) error {
	if records <= 0 || recBytes <= 0 {
		return fmt.Errorf("dryrun needs -records and -recbytes")
	}
	if segBytes == 0 {
		segBytes = recBytes * mmdb.DefaultRecordsPerSegment
	}
	cfg := storage.Config{NumRecords: records, RecordBytes: recBytes, SegmentBytes: segBytes}
	rep, err := inspect.DryRun(dir, cfg, nil)
	if err != nil {
		return err
	}
	fmt.Printf("recovery would succeed:\n")
	fmt.Printf("  checkpoint used:   %d (copy %d, %s)\n", rep.CheckpointID, rep.UsedCopy, rep.CheckpointAlgorithm)
	fmt.Printf("  segments loaded:   %d (%.1f MB)\n", rep.SegmentsLoaded, float64(rep.BackupBytesRead)/1e6)
	fmt.Printf("  log scanned:       %d records from LSN %d to %d (%.1f MB)\n",
		rep.RecordsScanned, rep.ScanStartLSN, rep.LogEndLSN, float64(rep.LogBytesRead)/1e6)
	fmt.Printf("  txns replayed:     %d (%d updates applied, %d logical, %d discarded)\n",
		rep.TxnsReplayed, rep.UpdatesApplied, rep.LogicalReplayed, rep.UpdatesDiscarded)
	fmt.Printf("  elapsed:           %v\n", rep.Elapsed)
	return nil
}
