// Command mmdbd serves a sharded mmdb key-value store over TCP using
// the netproto frame protocol (see internal/netproto for the wire
// format and mmdb/client for the Go client).
//
//	mmdbd -dir DIR [-records N] [-recbytes B] [-segbytes S]
//	      [-alg COUCOPY] [-shards N] [-addr host:port] [-sync]
//	      [-interval D] [-metrics host:port]
//
// Each shard is an independent engine under DIR/shard-NNN with its own
// WAL, backup pair, and checkpoint loop; checkpoint schedules are
// staggered across shards so backups stream one after another instead
// of bursting together. On startup mmdbd recovers whatever the
// directory holds and prints one line per recovered shard, then
//
//	mmdbd: listening on 127.0.0.1:7070 (4 shards)
//
// once it accepts connections — tooling watches stdout for that line.
// SIGINT/SIGTERM drain connections, stop the checkpoint loops, close
// every shard cleanly, and exit 0.
//
// With -metrics, an HTTP endpoint serves observability:
//
//	/metrics        router registry (per-shard routed ops, mmdb_shard_*)
//	/shard/N/       shard N's full engine registry + flight recorder
//	                (?format=json|chrome, &spans=1, ...)
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mmdb"
	"mmdb/internal/obs"
	"mmdb/internal/server"
	"mmdb/internal/shard"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:7070", "listen address")
		dir         = flag.String("dir", "", "database directory (required)")
		records     = flag.Int("records", 65536, "records per shard's primary")
		recBytes    = flag.Int("recbytes", 256, "record size in bytes")
		segBytes    = flag.Int("segbytes", 0, "checkpoint segment bytes (0 = 256 records)")
		algName     = flag.String("alg", "COUCOPY", "checkpoint algorithm")
		shards      = flag.Int("shards", 4, "number of shards (1 = plain unsharded layout)")
		syncCommit  = flag.Bool("sync", true, "fsync the log on every commit")
		interval    = flag.Duration("interval", 10*time.Second, "checkpoint interval (0 disables the loops)")
		metricsAddr = flag.String("metrics", "", "serve metrics over HTTP on this address (empty = off)")
	)
	flag.Parse()
	if err := run(*addr, *dir, *records, *recBytes, *segBytes, *algName,
		*shards, *syncCommit, *interval, *metricsAddr); err != nil {
		fmt.Fprintf(os.Stderr, "mmdbd: %v\n", err)
		os.Exit(1)
	}
}

// ctxcheck:root(main is the process root; shutdown is signal-driven)
func run(addr, dir string, records, recBytes, segBytes int, algName string,
	shards int, syncCommit bool, interval time.Duration, metricsAddr string) error {
	if dir == "" {
		return fmt.Errorf("-dir is required")
	}
	alg, err := mmdb.ParseAlgorithm(algName)
	if err != nil {
		return err
	}
	if shards > 1 && records%shards != 0 {
		return fmt.Errorf("-records %d must divide evenly by -shards %d", records, shards)
	}
	cfg := mmdb.Config{
		Dir:                dir,
		NumRecords:         records,
		RecordBytes:        recBytes,
		SegmentBytes:       segBytes, // 0 keeps the config default
		Algorithm:          alg,
		SyncCommit:         syncCommit,
		Shards:             shards,
		AutoCheckpoint:     interval > 0,
		CheckpointInterval: interval,
	}

	router, reports, err := shard.Open(context.Background(), cfg)
	if err != nil {
		return err
	}
	defer router.Close() //nolint:errcheckwal // the signal path below closes first; this covers error exits
	for i, rep := range reports {
		if rep != nil {
			fmt.Printf("mmdbd: shard %d recovered: %d log records scanned, checkpoint used: %v\n",
				i, rep.RecordsScanned, rep.UsedCheckpoint)
		}
	}

	if metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", obs.Handler(router.Registry(), nil, nil, nil))
		for i := 0; i < router.NumShards(); i++ {
			mux.Handle(fmt.Sprintf("/shard/%d/", i), router.Shard(i).DB().Metrics())
		}
		mln, err := net.Listen("tcp", metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		fmt.Printf("mmdbd: metrics on %s\n", mln.Addr())
		// goleak:joins process exit; the metrics server lives for the process
		go http.Serve(mln, mux) //nolint:errcheck // best-effort sidecar endpoint
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	srv := server.New(router)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	serveErr := make(chan error, 1)
	// goleak:joins the <-serveErr receive below
	go func() { serveErr <- srv.Serve(ln) }()

	fmt.Printf("mmdbd: listening on %s (%d shards)\n", ln.Addr(), router.NumShards())

	select {
	case sig := <-sigc:
		fmt.Printf("mmdbd: %v — shutting down\n", sig)
		srv.Shutdown()
		<-serveErr
		if err := router.Close(); err != nil {
			return fmt.Errorf("closing shards: %w", err)
		}
		fmt.Println("mmdbd: clean shutdown")
		return nil
	case err := <-serveErr:
		return err
	}
}
