package main

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"mmdb/client"
)

// TestMmdbdSmoke is the end-to-end binary test: build mmdbd, start it
// on an ephemeral port, parse the "listening on" line from stdout, run
// real traffic through the network client, then SIGTERM it and require
// a clean (exit 0) shutdown. `make mmdbd-smoke` runs exactly this.
func TestMmdbdSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the binary")
	}
	ctx := context.Background()
	bin := filepath.Join(t.TempDir(), "mmdbd")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building mmdbd: %v\n%s", err, out)
	}

	dir := t.TempDir()
	cmd := exec.Command(bin,
		"-dir", dir, "-addr", "127.0.0.1:0",
		"-records", "4096", "-recbytes", "128", "-shards", "4",
		"-interval", "50ms")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting mmdbd: %v", err)
	}
	defer cmd.Process.Kill() //nolint:errcheck // backstop; the happy path SIGTERMs first

	// Scan stdout for the ready line; tooling contracts on its shape.
	sc := bufio.NewScanner(stdout)
	var addr string
	lines := make(chan string, 16)
	// goleak:joins the scanner exits when the process does; cmd.Wait below
	go func() {
		defer close(lines)
		for sc.Scan() {
			lines <- sc.Text()
		}
	}()
	deadline := time.After(30 * time.Second)
scan:
	for {
		select {
		case line, ok := <-lines:
			if !ok {
				t.Fatalf("mmdbd exited before listening; stderr:\n%s", stderr.String())
			}
			if rest, found := strings.CutPrefix(line, "mmdbd: listening on "); found {
				addr = strings.Fields(rest)[0]
				break scan
			}
		case <-deadline:
			t.Fatal("mmdbd never printed its listening line")
		}
	}

	cli, err := client.Dial(addr)
	if err != nil {
		t.Fatalf("dialing mmdbd at %s: %v", addr, err)
	}
	for i := 0; i < 100; i++ {
		k := []byte(fmt.Sprintf("smoke-%03d", i))
		if err := cli.Put(ctx, k, k); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	st, err := cli.Stats(ctx)
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if len(st.Shards) != 4 || st.Len() != 100 {
		t.Fatalf("stats = %d shards, Len %d; want 4 shards, 100 entries", len(st.Shards), st.Len())
	}
	got, ok, err := cli.Get(ctx, []byte("smoke-042"))
	if err != nil || !ok || string(got) != "smoke-042" {
		t.Fatalf("Get = %q ok %v err %v", got, ok, err)
	}
	cli.Close() //nolint:errcheck // the server is about to be killed anyway

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}
	waitErr := make(chan error, 1)
	go func() { waitErr <- cmd.Wait() }()
	select {
	case err := <-waitErr:
		if err != nil {
			t.Fatalf("mmdbd exited uncleanly: %v; stderr:\n%s", err, stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("mmdbd did not exit within 30s of SIGTERM")
	}
	var sawClean bool
	for line := range lines {
		if strings.Contains(line, "clean shutdown") {
			sawClean = true
		}
	}
	if !sawClean {
		t.Error("mmdbd never printed its clean-shutdown line")
	}
}
