// Command testbed runs the paper's Section 5 testbed: the live engine
// under a paced load with checkpoint I/O throttled by the Table 2b disk
// model, measured side by side with the analytic model's prediction at
// the same scaled parameters.
//
// Example:
//
//	testbed -algs COUCOPY,2CCOPY -lambda 500 -txns 4000 -speedup 200
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"

	"mmdb"
	"mmdb/internal/testbed"
)

var (
	algsFlag = flag.String("algs", "FUZZYCOPY,FASTFUZZY,2CFLUSH,2CCOPY,COUFLUSH,COUCOPY", "comma-separated algorithms")
	records  = flag.Int("records", 1<<14, "records")
	recBytes = flag.Int("recbytes", 128, "record bytes")
	segBytes = flag.Int("segbytes", 0, "segment bytes (0 = 256 records)")
	lambda   = flag.Float64("lambda", 500, "target transactions/second")
	updates  = flag.Int("updates", 5, "updates per transaction (N_ru)")
	txns     = flag.Int("txns", 2000, "transactions per cell")
	writers  = flag.Int("writers", 4, "concurrent writers")
	speedup  = flag.Float64("speedup", 1, "disk-model speedup")
	seed     = flag.Int64("seed", 1, "workload seed")
)

func main() {
	flag.Parse()
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "algorithm\tTPS\tp_restart\tmodel p\tactive ckpt (s)\tmodel active\tsegs/ckpt\tmodel segs\tinstr/txn\tmodel instr")
	for _, name := range strings.Split(*algsFlag, ",") {
		alg, err := mmdb.ParseAlgorithm(strings.TrimSpace(name))
		if err != nil {
			fmt.Fprintln(os.Stderr, "testbed:", err)
			os.Exit(2)
		}
		res, err := testbed.Run(testbed.Scenario{
			Algorithm:     alg,
			Records:       *records,
			RecordBytes:   *recBytes,
			SegmentBytes:  *segBytes,
			Lambda:        *lambda,
			UpdatesPerTxn: *updates,
			Txns:          *txns,
			Writers:       *writers,
			Speedup:       *speedup,
			Seed:          *seed,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "testbed: %v: %v\n", alg, err)
			os.Exit(1)
		}
		m, p := res.Measured, res.Predicted
		fmt.Fprintf(w, "%v\t%.0f\t%.3f\t%.3f\t%.4f\t%.4f\t%.1f\t%.1f\t%.0f\t%.0f\n",
			alg, m.TPS, m.PRestart, p.PRestart,
			m.ActiveCheckpointSecs, p.ActiveSeconds,
			m.SegmentsPerCkpt, p.SegmentsPerCheckpoint,
			m.OverheadPerTxn, p.OverheadPerTxn)
	}
	w.Flush()
	fmt.Println("\n(measured on the live engine with throttled checkpoint I/O; 'model' = analytic prediction at the scaled parameters)")
}
