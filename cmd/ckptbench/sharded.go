package main

// Sharded benchmarking (-shards N): drive the paper's load model
// through the transport-agnostic store API against a sharded database —
// either a full in-process loopback stack (router → mmdbd server → TCP
// → network client, the default) or an already-running mmdbd (-addr).
// Every shard runs its own engine, WAL, and staggered checkpoint loop;
// the report carries per-shard engine stats plus an aggregate block.

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"mmdb"
	"mmdb/client"
	"mmdb/internal/server"
	"mmdb/internal/shard"
	"mmdb/kvstore"
	"mmdb/workload"
)

var (
	shardsFlag = flag.Int("shards", 0, "benchmark a sharded store with this many shards (0 = classic single-engine mode)")
	addrFlag   = flag.String("addr", "", "with -shards: benchmark an already-running mmdbd at this address instead of an in-process loopback stack")
)

// ShardedResult is one sharded run in the -json file (schema v4).
type ShardedResult struct {
	// Mode is "loopback" (in-process router + server + client over TCP)
	// or "remote" (-addr against an external mmdbd).
	Mode   string `json:"mode"`
	Addr   string `json:"addr,omitempty"`
	Shards int    `json:"shards"`

	Config         BenchConfig `json:"config"`
	ElapsedSeconds float64     `json:"elapsed_seconds"`
	// Batches is the number of committed client batches (the sharded
	// run's transaction analogue); Ops counts the individual updates.
	Batches      uint64  `json:"batches"`
	Ops          uint64  `json:"ops"`
	OpsPerSecond float64 `json:"ops_per_second"`
	// BatchSplits counts batches that spanned shards (loopback only:
	// the router-side counter is not remotely readable).
	BatchSplits uint64 `json:"batch_splits,omitempty"`

	PerShard  []ShardRunJSON  `json:"per_shard"`
	Aggregate ShardAggJSON    `json:"aggregate"`
	Recovery  *ShardRecovJSON `json:"recovery,omitempty"`
}

// ShardRunJSON is one shard's engine-level view of the run.
type ShardRunJSON struct {
	Shard           int     `json:"shard"`
	Entries         int     `json:"entries"`
	Free            int     `json:"free"`
	TxnsCommitted   uint64  `json:"txns_committed"`
	Checkpoints     uint64  `json:"checkpoints"`
	SegmentsFlushed uint64  `json:"segments_flushed"`
	SegmentsSkipped uint64  `json:"segments_skipped"`
	BytesFlushed    uint64  `json:"bytes_flushed"`
	LogAppends      uint64  `json:"log_appends"`
	LogBytes        uint64  `json:"log_bytes"`
	RecoverySeconds float64 `json:"recovery_seconds,omitempty"`
}

// ShardAggJSON sums the per-shard numbers and reports balance: how
// evenly the hash routing spread the keyspace and the work.
type ShardAggJSON struct {
	Entries         int    `json:"entries"`
	TxnsCommitted   uint64 `json:"txns_committed"`
	Checkpoints     uint64 `json:"checkpoints"`
	SegmentsFlushed uint64 `json:"segments_flushed"`
	BytesFlushed    uint64 `json:"bytes_flushed"`
	LogBytes        uint64 `json:"log_bytes"`
	// MinEntries/MaxEntries bound the per-shard keyspace spread; a
	// healthy hash keeps them close.
	MinEntries int `json:"min_shard_entries"`
	MaxEntries int `json:"max_shard_entries"`
}

// ShardRecovJSON times whole-fleet crash recovery (-crash, loopback
// only): all shards recover concurrently, so the wall clock tracks the
// slowest shard, not the sum.
type ShardRecovJSON struct {
	WallSeconds float64 `json:"wall_seconds"`
	// SumSeconds adds each shard's own recovery time — the serial-
	// equivalent cost the parallel fleet recovery avoided.
	SumSeconds     float64 `json:"sum_seconds"`
	UsedCheckpoint int     `json:"shards_used_checkpoint"`
}

// runSharded executes the sharded benchmark and returns its report.
func runSharded() (*ShardedResult, error) {
	if *addrFlag != "" && *crash {
		return nil, fmt.Errorf("-crash needs the engines in-process; it cannot crash a remote mmdbd (-addr)")
	}

	res := &ShardedResult{
		Shards: *shardsFlag,
		Config: BenchConfig{
			Records: *records, RecordBytes: *recBytes, SegmentBytes: effSegBytes(),
			Txns: *txns, UpdatesPerTxn: *updates, Writers: *writers,
			IntervalSeconds: interval.Seconds(),
			SyncCommit:      *syncCmt, ZipfS: *zipfS, Seed: *seed,
			Parallelism: 1,
		},
	}

	// Assemble the store under test: a remote client, or the full
	// loopback stack over a real TCP socket.
	var store kvstore.Store
	var router *shard.Router
	var cfg mmdb.Config
	switch {
	case *addrFlag != "":
		res.Mode, res.Addr = "remote", *addrFlag
		cli, err := client.Dial(*addrFlag)
		if err != nil {
			return nil, err
		}
		defer cli.Close() //nolint:errcheckwal // benchmark teardown
		store = cli
		fmt.Printf("sharded bench: remote mmdbd at %s\n", *addrFlag)
	default:
		res.Mode = "loopback"
		dir := *dirFlag
		if dir == "" {
			var err error
			dir, err = os.MkdirTemp("", "ckptbench-shards-*")
			if err != nil {
				return nil, err
			}
			defer os.RemoveAll(dir)
		}
		alg, err := mmdb.ParseAlgorithm(*algName)
		if err != nil {
			return nil, err
		}
		cfg = mmdb.Config{
			Dir:                  dir,
			NumRecords:           *records,
			RecordBytes:          *recBytes,
			SegmentBytes:         *segBytes,
			Algorithm:            alg,
			StableLogTail:        *stable || alg == mmdb.FastFuzzy,
			SyncCommit:           *syncCmt,
			GroupCommitInterval:  2 * time.Millisecond,
			CheckpointInterval:   *interval,
			AutoCheckpoint:       true,
			Shards:               *shardsFlag,
			ThrottleCheckpointIO: *throttle,
			ThrottlePerStream:    *throttle,
			ThrottleSpeedup:      *speedup,
		}
		r, _, err := shard.Open(context.Background(), cfg)
		if err != nil {
			return nil, err
		}
		router = r
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			router.Close() //nolint:errcheckwal // open failed partway; report the listen error
			return nil, err
		}
		srv := server.New(router)
		serveDone := make(chan struct{})
		// goleak:joins the deferred Shutdown waits via serveDone
		go func() {
			defer close(serveDone)
			srv.Serve(ln) //nolint:errcheck // exits with a closed-listener error on Shutdown
		}()
		defer func() {
			srv.Shutdown()
			<-serveDone
			router.Close() //nolint:errcheckwal // benchmark teardown; -crash already crashed it
		}()
		cli, err := client.Dial(ln.Addr().String())
		if err != nil {
			return nil, err
		}
		defer cli.Close() //nolint:errcheckwal // benchmark teardown
		store = cli
		fmt.Printf("sharded bench: %d shards behind a loopback mmdbd stack at %s (%v)\n",
			*shardsFlag, ln.Addr(), alg)
	}

	// The load model over the store API: each "transaction" is one
	// client batch of -updates puts, keys drawn from half the record
	// capacity so the fleet never fills. Values sized so key + value +
	// header fit one record.
	keyspace := *records / 2
	valBytes := *recBytes / 2
	if valBytes < 1 {
		valBytes = 1
	}
	fmt.Printf("load: %d batches × %d puts, %d writers, %d-key space\n\n",
		*txns, *updates, *writers, keyspace)

	ctx := context.Background()
	var batches, ops atomic.Uint64
	var wg sync.WaitGroup
	start := time.Now()
	perWriter := *txns / *writers
	for w := 0; w < *writers; w++ {
		wg.Add(1)
		// goleak:joins wg.Wait below
		go func(w int) {
			defer wg.Done()
			var gen workload.Generator
			var gerr error
			if *zipfS > 1 {
				gen, gerr = workload.NewZipf(keyspace, *updates, valBytes, *zipfS, *seed+int64(w))
			} else {
				gen, gerr = workload.NewUniform(keyspace, *updates, valBytes, *seed+int64(w))
			}
			if gerr != nil {
				fmt.Fprintln(os.Stderr, "ckptbench:", gerr)
				return
			}
			batch := make([]kvstore.Op, *updates)
			for i := 0; i < perWriter; i++ {
				spec := gen.Next()
				for j, u := range spec.Updates {
					batch[j] = kvstore.Op{
						Key: []byte(fmt.Sprintf("key-%08d", u.Record)),
						Val: u.Value,
					}
				}
				if err := store.Batch(ctx, batch); err != nil {
					fmt.Fprintln(os.Stderr, "ckptbench: batch:", err)
					return
				}
				batches.Add(1)
				ops.Add(uint64(len(batch)))
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	st, err := store.Stats(ctx)
	if err != nil {
		return nil, err
	}
	res.ElapsedSeconds = elapsed.Seconds()
	res.Batches = batches.Load()
	res.Ops = ops.Load()
	res.OpsPerSecond = float64(ops.Load()) / elapsed.Seconds()
	if router != nil {
		res.BatchSplits = routerBatchSplits(router)
	}
	fillShardStats(res, st)

	fmt.Printf("committed %d batches (%d ops) in %v (%.0f ops/s)\n",
		res.Batches, res.Ops, elapsed.Round(time.Millisecond), res.OpsPerSecond)
	for _, sh := range res.PerShard {
		fmt.Printf("  shard %d: %d entries, %d txns, %d checkpoints, %d segments (%.1f MB), log %.1f MB\n",
			sh.Shard, sh.Entries, sh.TxnsCommitted, sh.Checkpoints,
			sh.SegmentsFlushed, float64(sh.BytesFlushed)/1e6, float64(sh.LogBytes)/1e6)
	}
	fmt.Printf("aggregate: %d entries (spread %d–%d per shard), %d checkpoints, %.1f MB flushed\n",
		res.Aggregate.Entries, res.Aggregate.MinEntries, res.Aggregate.MaxEntries,
		res.Aggregate.Checkpoints, float64(res.Aggregate.BytesFlushed)/1e6)

	if !*crash {
		return res, nil
	}

	// Whole-fleet crash: every engine loses volatile state at once, then
	// the fleet recovers concurrently — wall clock vs per-shard sum
	// shows the parallel-recovery win.
	fmt.Println("\ncrashing all shards...")
	_ = router.Crash() // teardown errors are the crash working as intended
	rstart := time.Now()
	r2, reps, err := shard.Open(context.Background(), cfg)
	if err != nil {
		return nil, err
	}
	defer r2.Close() //nolint:errcheckwal // benchmark teardown
	wall := time.Since(rstart)
	recov := &ShardRecovJSON{WallSeconds: wall.Seconds()}
	for i, rep := range reps {
		if rep == nil {
			continue
		}
		recov.SumSeconds += rep.Elapsed.Seconds()
		if rep.UsedCheckpoint {
			recov.UsedCheckpoint++
		}
		if i < len(res.PerShard) {
			res.PerShard[i].RecoverySeconds = rep.Elapsed.Seconds()
		}
	}
	res.Recovery = recov
	fmt.Printf("recovered %d shards in %v wall (%.1fms summed serial-equivalent), %d/%d from checkpoints\n",
		len(reps), wall.Round(time.Millisecond), recov.SumSeconds*1e3,
		recov.UsedCheckpoint, len(reps))
	return res, nil
}

// routerBatchSplits reads the router's split counter off its registry.
func routerBatchSplits(r *shard.Router) uint64 {
	for _, pt := range r.Registry().Gather() {
		if pt.Name == "mmdb_router_batch_splits_total" {
			return uint64(pt.Value)
		}
	}
	return 0
}

// fillShardStats populates the per-shard and aggregate blocks from a
// StoreStats snapshot (works identically for loopback and remote runs —
// the engine stats travel inside the stats response).
func fillShardStats(res *ShardedResult, st kvstore.StoreStats) {
	res.PerShard = make([]ShardRunJSON, 0, len(st.Shards))
	agg := ShardAggJSON{MinEntries: int(^uint(0) >> 1)}
	for _, sh := range st.Shards {
		e := sh.Engine
		res.PerShard = append(res.PerShard, ShardRunJSON{
			Shard:           sh.Shard,
			Entries:         sh.Len,
			Free:            sh.Free,
			TxnsCommitted:   e.TxnsCommitted,
			Checkpoints:     e.Checkpoints,
			SegmentsFlushed: e.SegmentsFlushed,
			SegmentsSkipped: e.SegmentsSkipped,
			BytesFlushed:    uint64(e.BytesFlushed),
			LogAppends:      e.LogAppends,
			LogBytes:        uint64(e.LogBytes),
		})
		agg.Entries += sh.Len
		agg.TxnsCommitted += e.TxnsCommitted
		agg.Checkpoints += e.Checkpoints
		agg.SegmentsFlushed += e.SegmentsFlushed
		agg.BytesFlushed += uint64(e.BytesFlushed)
		agg.LogBytes += uint64(e.LogBytes)
		if sh.Len < agg.MinEntries {
			agg.MinEntries = sh.Len
		}
		if sh.Len > agg.MaxEntries {
			agg.MaxEntries = sh.Len
		}
	}
	if len(st.Shards) == 0 {
		agg.MinEntries = 0
	}
	res.Aggregate = agg
}
