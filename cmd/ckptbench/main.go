// Command ckptbench drives the real mmdb engine under the paper's load
// model: concurrent writers issue transactions of uniform record updates
// while the configured checkpoint algorithm maintains the backup database.
// At the end it optionally crashes the engine and times recovery, then
// reports throughput, checkpoint activity, the measured restart
// probability, commit/checkpoint latency quantiles from the engine's
// histograms, and a measured-vs-analytic comparison: the run priced in
// the paper's instructions-per-transaction metric next to the model's
// prediction for the same operating point.
//
// Example:
//
//	ckptbench -alg 2CCOPY -records 65536 -txns 20000 -writers 4 -crash
//	ckptbench -matrix -crash -json BENCH_ckpt.json   # all eight algorithms
//	ckptbench -alg COUCOPY -parallel 1,4 -throttle -crash   # serial vs 4-worker pipeline
//	ckptbench -alg COUCOPY -metrics :6060            # mmdbctl stats -addr http://localhost:6060/metrics
//	ckptbench -shards 4 -crash -append -json BENCH_ckpt.json  # sharded, through a loopback mmdbd
//	ckptbench -shards 4 -addr db0:7070               # against an already-running mmdbd
//
// With -shards the workload runs through the transport-agnostic store
// API against a live network stack (see sharded.go); the -json report
// gains a per-shard + aggregate block under "sharded_runs".
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mmdb"
	"mmdb/analytic"
	"mmdb/internal/obs"
	"mmdb/workload"
)

var (
	algName  = flag.String("alg", "COUCOPY", "checkpoint algorithm")
	matrix   = flag.Bool("matrix", false, "run all eight algorithms in sequence (ignores -alg and -dir)")
	records  = flag.Int("records", 1<<16, "number of records")
	recBytes = flag.Int("recbytes", 128, "record size in bytes")
	segBytes = flag.Int("segbytes", 0, "segment size in bytes (0 = 256 records)")
	txns     = flag.Int("txns", 20000, "transactions to run")
	updates  = flag.Int("updates", 5, "updates per transaction (the paper's N_ru)")
	writers  = flag.Int("writers", 4, "concurrent writer goroutines")
	interval = flag.Duration("interval", 0, "checkpoint interval (0 = back-to-back)")
	full     = flag.Bool("full", false, "full checkpoints")
	stable   = flag.Bool("stable", false, "stable log tail")
	syncCmt  = flag.Bool("sync", false, "synchronous commit")
	zipfS    = flag.Float64("zipf", 0, "Zipf skew (>1 enables skewed access; 0 = uniform, the paper's model)")
	tps      = flag.Float64("tps", 0, "target transaction arrival rate (Poisson, split across writers; 0 = unpaced)")
	crash    = flag.Bool("crash", false, "crash at the end and time recovery")
	dirFlag  = flag.String("dir", "", "database directory (default: a temp dir)")
	seed     = flag.Int64("seed", 1, "workload seed")
	parallel = flag.String("parallel", "1", "comma-separated checkpoint/recovery worker counts; each algorithm runs once per count")
	throttle = flag.Bool("throttle", false, "pace checkpoint segment writes with the paper's disk model, one stream per worker")
	speedup  = flag.Float64("speedup", 0, "divide the modeled throttle delays by this factor (0 = engine default)")
	jsonPath = flag.String("json", "", "write the machine-readable result file here")
	appendTo = flag.Bool("append", false, "with -json: keep the existing file's runs and append this invocation's (the schema is upgraded in place)")
	metrics  = flag.String("metrics", "", "serve live metrics on this address during the run (e.g. :6060)")
	traceOut = flag.String("trace", "", "write each run's span ring as Chrome trace-event JSON here (matrix/parallel runs get per-run suffixes)")
)

// ResultSchema identifies the -json file layout. v2 added the
// "parallelism" config echo and "avg_checkpoint_seconds"; v3 added the
// per-phase commit "attribution" breakdown from the mmdb_commit_attr_*
// histograms; v4 adds the "sharded_runs" block (-shards: per-shard
// engine stats, an aggregate, and fleet recovery times) — "runs"
// entries are unchanged from v3.
const ResultSchema = "mmdb/ckptbench/v4"

// BenchFile is the top-level -json document.
type BenchFile struct {
	Schema      string           `json:"schema"`
	Runs        []*BenchResult   `json:"runs"`
	ShardedRuns []*ShardedResult `json:"sharded_runs,omitempty"`
}

// BenchResult is one algorithm's run: configuration, totals, latency
// histograms, recovery phase times, and the measured-vs-analytic pricing.
type BenchResult struct {
	Algorithm      string                       `json:"algorithm"`
	Config         BenchConfig                  `json:"config"`
	ElapsedSeconds float64                      `json:"elapsed_seconds"`
	AvgCkptSeconds float64                      `json:"avg_checkpoint_seconds"`
	TxnsCommitted  uint64                       `json:"txns_committed"`
	TxnsPerSecond  float64                      `json:"txns_per_second"`
	Checkpoints    uint64                       `json:"checkpoints"`
	SegsFlushed    uint64                       `json:"segments_flushed"`
	SegsSkipped    uint64                       `json:"segments_skipped"`
	BytesFlushed   uint64                       `json:"bytes_flushed"`
	ColorRestarts  uint64                       `json:"color_restarts"`
	COUCopies      uint64                       `json:"cou_copies"`
	ZigzagFlips    uint64                       `json:"zigzag_flips,omitempty"`
	HourglassWaits uint64                       `json:"hourglass_waits,omitempty"`
	Latency        map[string]obs.HistogramJSON `json:"latency"`
	// Attribution decomposes commit latency into its phases (see
	// DESIGN.md §19): each entry is one mmdb_commit_attr_* histogram.
	// lock_wait and restart lie outside the commit-latency histogram;
	// the remaining phases nest inside it, so their sums are bounded by
	// the commit sum.
	Attribution map[string]obs.HistogramJSON `json:"attribution,omitempty"`
	Recovery    *RecoveryJSON                `json:"recovery,omitempty"`
	Analytic    *AnalyticJSON                `json:"analytic,omitempty"`
}

// BenchConfig echoes the knobs that shaped the run.
type BenchConfig struct {
	Records         int     `json:"records"`
	RecordBytes     int     `json:"record_bytes"`
	SegmentBytes    int     `json:"segment_bytes"`
	Txns            int     `json:"txns"`
	UpdatesPerTxn   int     `json:"updates_per_txn"`
	Writers         int     `json:"writers"`
	IntervalSeconds float64 `json:"interval_seconds"`
	Full            bool    `json:"full"`
	StableTail      bool    `json:"stable_tail"`
	SyncCommit      bool    `json:"sync_commit"`
	ZipfS           float64 `json:"zipf_s"`
	Seed            int64   `json:"seed"`
	// Parallelism is the checkpoint worker-pool width and recovery
	// worker count the run used (1 = the serial pipeline).
	Parallelism int  `json:"parallelism"`
	Throttled   bool `json:"throttled"`
}

// RecoveryJSON reports the timed crash-recovery phases (-crash only).
type RecoveryJSON struct {
	TotalSeconds      float64 `json:"total_seconds"`
	BackupLoadSeconds float64 `json:"backup_load_seconds"`
	LogScanSeconds    float64 `json:"log_scan_seconds"`
	RedoApplySeconds  float64 `json:"redo_apply_seconds"`
	SegmentsLoaded    int     `json:"segments_loaded"`
	RecordsScanned    int     `json:"records_scanned"`
	TxnsReplayed      int     `json:"txns_replayed"`
	UpdatesApplied    int     `json:"updates_applied"`
}

// AnalyticJSON compares the run's measured cost against the paper's
// analytic model evaluated at the same operating point (same geometry and
// per-transaction update count, arrival rate taken from the measured
// throughput).
type AnalyticJSON struct {
	MeasuredOverheadPerTxn  float64 `json:"measured_overhead_per_txn"`
	MeasuredSyncPerTxn      float64 `json:"measured_sync_per_txn"`
	MeasuredAsyncPerTxn     float64 `json:"measured_async_per_txn"`
	PredictedOverheadPerTxn float64 `json:"predicted_overhead_per_txn"`
	PredictedSyncPerTxn     float64 `json:"predicted_sync_per_txn"`
	PredictedAsyncPerTxn    float64 `json:"predicted_async_per_txn"`
	MeasuredPRestart        float64 `json:"measured_p_restart"`
	PredictedPRestart       float64 `json:"predicted_p_restart"`
	MeasuredRecoverySeconds float64 `json:"measured_recovery_seconds,omitempty"`
	PredictedRecoverySecs   float64 `json:"predicted_recovery_seconds"`
	PredictedSegsPerCkpt    float64 `json:"predicted_segments_per_checkpoint"`
	MeasuredSegsPerCkpt     float64 `json:"measured_segments_per_checkpoint"`
}

// latencyHists maps the -json latency keys to registry histogram names.
var latencyHists = map[string]string{
	"commit":                "mmdb_engine_commit_seconds",
	"checkpoint":            "mmdb_engine_checkpoint_seconds",
	"checkpoint_segment":    "mmdb_engine_checkpoint_segment_seconds",
	"lsn_wait":              "mmdb_engine_lsn_wait_seconds",
	"wal_append":            "mmdb_wal_append_seconds",
	"wal_flush":             "mmdb_wal_flush_seconds",
	"wal_flush_batch_bytes": "mmdb_wal_flush_batch_bytes",
	"backup_segment_write":  "mmdb_backup_segment_write_seconds",
	"lock_wait":             "mmdb_lockmgr_wait_seconds",
}

// attrHists maps the -json attribution keys to the commit-attribution
// histogram names. attrOrder fixes the console print order.
var attrHists = map[string]string{
	"lock_wait":       "mmdb_commit_attr_lock_wait_seconds",
	"wal_append":      "mmdb_commit_attr_wal_append_seconds",
	"flush_wait":      "mmdb_commit_attr_flush_wait_seconds",
	"cou_copy":        "mmdb_commit_attr_cou_copy_seconds",
	"zigzag_flip":     "mmdb_commit_attr_zigzag_flip_seconds",
	"hourglass_stall": "mmdb_commit_attr_hourglass_stall_seconds",
	"restart":         "mmdb_commit_attr_restart_seconds",
}

var attrOrder = []string{
	"lock_wait", "wal_append", "flush_wait", "cou_copy",
	"zigzag_flip", "hourglass_stall", "restart",
}

// liveDB publishes the currently running database to the -metrics server
// (matrix mode opens a new database per algorithm).
var liveDB atomic.Pointer[mmdb.DB]

func main() {
	flag.Parse()
	if *metrics != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			db := liveDB.Load()
			if db == nil {
				http.Error(w, "no run in progress", http.StatusServiceUnavailable)
				return
			}
			db.Metrics().ServeHTTP(w, r)
		})
		// goleak:fireforget(metrics endpoint serves for the whole process lifetime)
		go func() {
			if err := http.ListenAndServe(*metrics, mux); err != nil {
				fmt.Fprintln(os.Stderr, "ckptbench: metrics server:", err)
			}
		}()
	}

	algs := []string{*algName}
	if *matrix {
		algs = algs[:0]
		for _, a := range mmdb.Algorithms {
			algs = append(algs, a.String())
		}
	}
	pars, err := parseParallelList(*parallel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ckptbench:", err)
		os.Exit(1)
	}

	file := &BenchFile{Schema: ResultSchema}
	if *jsonPath != "" && *appendTo {
		if prev, err := loadBenchFile(*jsonPath); err != nil {
			fmt.Fprintln(os.Stderr, "ckptbench: -append:", err)
			os.Exit(1)
		} else if prev != nil {
			file.Runs = prev.Runs
			file.ShardedRuns = prev.ShardedRuns
		}
	}

	if *shardsFlag > 0 {
		res, err := runSharded()
		if err != nil {
			fmt.Fprintln(os.Stderr, "ckptbench:", err)
			os.Exit(1)
		}
		file.ShardedRuns = append(file.ShardedRuns, res)
	} else {
		for i, name := range algs {
			for j, par := range pars {
				if i+j > 0 {
					fmt.Println()
				}
				res, err := run(name, par)
				if err != nil {
					fmt.Fprintln(os.Stderr, "ckptbench:", err)
					os.Exit(1)
				}
				file.Runs = append(file.Runs, res)
			}
		}
		printSpeedups(file.Runs)
	}

	if *jsonPath != "" {
		buf, err := json.MarshalIndent(file, "", "  ")
		if err == nil {
			err = os.WriteFile(*jsonPath, append(buf, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "ckptbench: write -json:", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %s (%d runs, %d sharded)\n", *jsonPath, len(file.Runs), len(file.ShardedRuns))
	}
}

// loadBenchFile reads an existing -json file for -append. A missing
// file is fine (nil, nil); any ckptbench schema is accepted — the
// rewrite stamps the current one.
func loadBenchFile(path string) (*BenchFile, error) {
	buf, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var file BenchFile
	if err := json.Unmarshal(buf, &file); err != nil {
		return nil, fmt.Errorf("%s is not a ckptbench result file: %w", path, err)
	}
	if !strings.HasPrefix(file.Schema, "mmdb/ckptbench/") {
		return nil, fmt.Errorf("%s has schema %q, not a ckptbench result file", path, file.Schema)
	}
	return &file, nil
}

// parseParallelList parses the -parallel flag: a comma-separated list of
// positive worker counts.
func parseParallelList(s string) ([]int, error) {
	var pars []int
	for _, field := range strings.Split(s, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		n, err := strconv.Atoi(field)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -parallel entry %q (want a positive integer)", field)
		}
		pars = append(pars, n)
	}
	if len(pars) == 0 {
		return nil, fmt.Errorf("-parallel %q names no worker counts", s)
	}
	return pars, nil
}

// printSpeedups compares each algorithm's parallel runs against its
// serial (parallelism-1) run, when both are present.
func printSpeedups(runs []*BenchResult) {
	serial := map[string]*BenchResult{}
	for _, r := range runs {
		if r.Config.Parallelism == 1 {
			serial[r.Algorithm] = r
		}
	}
	printed := false
	for _, r := range runs {
		base := serial[r.Algorithm]
		if r.Config.Parallelism == 1 || base == nil {
			continue
		}
		if !printed {
			fmt.Println("\nparallel vs serial:")
			printed = true
		}
		line := fmt.Sprintf("  %-10s %d workers:", r.Algorithm, r.Config.Parallelism)
		if base.AvgCkptSeconds > 0 && r.AvgCkptSeconds > 0 {
			line += fmt.Sprintf(" checkpoint %.2fx (%.1fms → %.1fms)",
				base.AvgCkptSeconds/r.AvgCkptSeconds,
				base.AvgCkptSeconds*1e3, r.AvgCkptSeconds*1e3)
		}
		if base.Recovery != nil && r.Recovery != nil && r.Recovery.TotalSeconds > 0 {
			line += fmt.Sprintf(", recovery %.2fx (%.1fms → %.1fms)",
				base.Recovery.TotalSeconds/r.Recovery.TotalSeconds,
				base.Recovery.TotalSeconds*1e3, r.Recovery.TotalSeconds*1e3)
		}
		fmt.Println(line)
	}
}

func run(algName string, par int) (*BenchResult, error) {
	alg, err := mmdb.ParseAlgorithm(algName)
	if err != nil {
		return nil, err
	}
	dir := *dirFlag
	if dir == "" || *matrix {
		var err error
		dir, err = os.MkdirTemp("", "ckptbench-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
	}
	cfg := mmdb.Config{
		Dir:                 filepath.Clean(dir),
		NumRecords:          *records,
		RecordBytes:         *recBytes,
		SegmentBytes:        *segBytes,
		Algorithm:           alg,
		FullCheckpoints:     *full,
		StableLogTail:       *stable || alg == mmdb.FastFuzzy,
		SyncCommit:          *syncCmt,
		GroupCommitInterval: 2 * time.Millisecond,
		CheckpointInterval:  *interval,
		AutoCheckpoint:      true,

		CheckpointParallelism: par,
		RecoveryParallelism:   par,
		// Per-stream throttling charges each worker the full per-device
		// service time, so the K-worker pipeline shows the disk-model
		// speedup even on few-core hosts (the sleeps overlap).
		ThrottleCheckpointIO: *throttle,
		ThrottlePerStream:    *throttle,
		ThrottleSpeedup:      *speedup,
	}
	if *traceOut != "" {
		// Trace every commit so the exported span ring holds complete
		// trees for the run's tail rather than a 1-in-8 sample.
		cfg.SpanSampleEvery = 1
	}
	db, err := mmdb.Open(cfg)
	if err != nil {
		return nil, err
	}
	liveDB.Store(db)
	defer liveDB.Store(nil)

	fmt.Printf("engine: %v\n", db)
	fmt.Printf("load: %d txns × %d updates, %d writers, %s access, %d checkpoint worker(s)\n\n",
		*txns, *updates, *writers, map[bool]string{true: "zipf", false: "uniform"}[*zipfS > 1], par)

	var done atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	perWriter := *txns / *writers
	for w := 0; w < *writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var gen workload.Generator
			var gerr error
			if *zipfS > 1 {
				gen, gerr = workload.NewZipf(*records, *updates, *recBytes, *zipfS, *seed+int64(w))
			} else {
				gen, gerr = workload.NewUniform(*records, *updates, *recBytes, *seed+int64(w))
			}
			if gerr != nil {
				fmt.Fprintln(os.Stderr, "ckptbench:", gerr)
				return
			}
			var pacer *workload.Pacer
			if *tps > 0 {
				pacer, gerr = workload.NewPacer(*tps/float64(*writers), true, *seed+100+int64(w))
				if gerr != nil {
					fmt.Fprintln(os.Stderr, "ckptbench:", gerr)
					return
				}
			}
			for i := 0; i < perWriter; i++ {
				if pacer != nil {
					pacer.Wait()
				}
				spec := gen.Next()
				err := db.Exec(func(tx *mmdb.Txn) error {
					for _, u := range spec.Updates {
						if err := tx.Write(u.Record, u.Value); err != nil {
							return err
						}
					}
					return nil
				})
				if err != nil {
					fmt.Fprintln(os.Stderr, "ckptbench: txn:", err)
					return
				}
				done.Add(1)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	db.StopCheckpointLoop()

	st := db.Stats()
	tput := float64(done.Load()) / elapsed.Seconds()
	fmt.Printf("committed %d txns in %v (%.0f txn/s)\n", done.Load(), elapsed.Round(time.Millisecond), tput)
	fmt.Printf("checkpoints: %d completed, %d segments flushed (%.1f MB), %d skipped clean\n",
		st.Checkpoints, st.SegmentsFlushed, float64(st.BytesFlushed)/1e6, st.SegmentsSkipped)
	fmt.Printf("last checkpoint: %v; avg %v\n",
		st.LastCheckpointTime.Round(time.Microsecond), avgCkpt(st).Round(time.Microsecond))
	fmt.Printf("two-color: %d restarts of %d attempts (measured p_restart = %.4f)\n",
		st.ColorRestarts, st.TxnsBegun, st.PRestart())
	fmt.Printf("copy-on-update: %d old-version copies (%.1f MB), peak %d live\n",
		st.COUCopies, float64(st.COUCopyBytes)/1e6, st.COUPeakOld)
	if st.ZigzagFlips > 0 || st.HourglassWaits > 0 {
		fmt.Printf("extensions: %d zigzag flips (%.1f MB), %d hourglass window waits\n",
			st.ZigzagFlips, float64(st.ZigzagFlipBytes)/1e6, st.HourglassWaits)
	}
	fmt.Printf("log: %d appends, %d flushes, %.1f MB; locks: %d acquired, %d waits, %d timeouts\n",
		st.LogAppends, st.LogFlushes, float64(st.LogBytes)/1e6, st.LockAcquires, st.LockWaits, st.LockTimeouts)

	res := &BenchResult{
		Algorithm: alg.String(),
		Config: BenchConfig{
			Records: *records, RecordBytes: *recBytes, SegmentBytes: effSegBytes(),
			Txns: *txns, UpdatesPerTxn: *updates, Writers: *writers,
			IntervalSeconds: interval.Seconds(),
			Full:            *full, StableTail: cfg.StableLogTail, SyncCommit: *syncCmt,
			ZipfS: *zipfS, Seed: *seed,
			Parallelism: par, Throttled: *throttle,
		},
		ElapsedSeconds: elapsed.Seconds(),
		AvgCkptSeconds: avgCkpt(st).Seconds(),
		TxnsCommitted:  uint64(done.Load()),
		TxnsPerSecond:  tput,
		Checkpoints:    st.Checkpoints,
		SegsFlushed:    st.SegmentsFlushed,
		SegsSkipped:    st.SegmentsSkipped,
		BytesFlushed:   uint64(st.BytesFlushed),
		ColorRestarts:  st.ColorRestarts,
		COUCopies:      st.COUCopies,
		ZigzagFlips:    st.ZigzagFlips,
		HourglassWaits: st.HourglassWaits,
		Latency:        map[string]obs.HistogramJSON{},
	}
	reg := db.MetricsRegistry()
	for key, name := range latencyHists {
		if h := reg.FindHistogram(name); h != nil && h.Count() > 0 {
			res.Latency[key] = obs.SnapshotJSON(h.Snapshot())
		}
	}
	if c := res.Latency["commit"]; c.Count > 0 {
		fmt.Printf("commit latency: p50 %.0fµs p90 %.0fµs p99 %.0fµs max %.0fµs\n",
			c.P50*1e6, c.P90*1e6, c.P99*1e6, c.Max*1e6)
	}
	res.Attribution = map[string]obs.HistogramJSON{}
	for key, name := range attrHists {
		if h := reg.FindHistogram(name); h != nil && h.Count() > 0 {
			res.Attribution[key] = obs.SnapshotJSON(h.Snapshot())
		}
	}
	if n := res.TxnsCommitted; n > 0 && len(res.Attribution) > 0 {
		line := "commit attribution (µs/txn):"
		for _, key := range attrOrder {
			a, ok := res.Attribution[key]
			if !ok {
				continue
			}
			line += fmt.Sprintf(" %s %.1f", key, a.Sum/float64(n)*1e6)
		}
		fmt.Println(line)
	}

	if *traceOut != "" {
		path := traceFilePath(*traceOut, alg.String(), par)
		if err := writeTrace(path, db); err != nil {
			return nil, err
		}
		fmt.Printf("wrote Chrome trace to %s\n", path)
	}

	res.Analytic = priceRun(db, st, alg, tput)
	if a := res.Analytic; a != nil {
		fmt.Printf("overhead instr/txn: measured %.0f (sync %.0f + async %.0f) vs predicted %.0f (sync %.0f + async %.0f)\n",
			a.MeasuredOverheadPerTxn, a.MeasuredSyncPerTxn, a.MeasuredAsyncPerTxn,
			a.PredictedOverheadPerTxn, a.PredictedSyncPerTxn, a.PredictedAsyncPerTxn)
		fmt.Printf("p_restart: measured %.4f vs predicted %.4f; predicted recovery %.2fs\n",
			a.MeasuredPRestart, a.PredictedPRestart, a.PredictedRecoverySecs)
	}

	if !*crash {
		return res, db.Close()
	}

	fmt.Println("\ncrashing...")
	if err := db.Crash(); err != nil {
		return nil, err
	}
	rstart := time.Now()
	db2, rep, err := mmdb.Recover(cfg)
	if err != nil {
		return nil, err
	}
	fmt.Printf("recovered in %v: checkpoint %d (copy %d, %s), %d segments loaded (%.1f MB), "+
		"%d log records scanned (%.1f MB), %d txns replayed, %d updates applied, %d discarded\n",
		time.Since(rstart).Round(time.Millisecond), rep.CheckpointID, rep.UsedCopy,
		rep.CheckpointAlgorithm, rep.SegmentsLoaded, float64(rep.BackupBytesRead)/1e6,
		rep.RecordsScanned, float64(rep.LogBytesRead)/1e6,
		rep.TxnsReplayed, rep.UpdatesApplied, rep.UpdatesDiscarded)
	fmt.Printf("recovery phases: backup load %v, log scan %v, redo apply %v\n",
		rep.BackupLoadTime.Round(time.Microsecond), rep.LogScanTime.Round(time.Microsecond),
		rep.RedoApplyTime.Round(time.Microsecond))
	res.Recovery = &RecoveryJSON{
		TotalSeconds:      rep.Elapsed.Seconds(),
		BackupLoadSeconds: rep.BackupLoadTime.Seconds(),
		LogScanSeconds:    rep.LogScanTime.Seconds(),
		RedoApplySeconds:  rep.RedoApplyTime.Seconds(),
		SegmentsLoaded:    rep.SegmentsLoaded,
		RecordsScanned:    rep.RecordsScanned,
		TxnsReplayed:      rep.TxnsReplayed,
		UpdatesApplied:    rep.UpdatesApplied,
	}
	if res.Analytic != nil {
		res.Analytic.MeasuredRecoverySeconds = rep.Elapsed.Seconds()
	}
	return res, db2.Close()
}

// traceFilePath derives a per-run trace filename: the -trace path as
// given for a single run, or with an ".ALG-pN" tag before the extension
// when the matrix or a -parallel list produces several runs.
func traceFilePath(base, alg string, par int) string {
	if !*matrix && !strings.Contains(*parallel, ",") {
		return base
	}
	ext := filepath.Ext(base)
	return fmt.Sprintf("%s.%s-p%d%s", strings.TrimSuffix(base, ext), alg, par, ext)
}

// writeTrace dumps the engine's span ring and lifecycle-event ring as
// Chrome trace-event JSON, loadable in chrome://tracing or Perfetto.
func writeTrace(path string, db *mmdb.DB) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := obs.WriteChromeTrace(f, db.Spans(), db.TraceEvents())
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

// effSegBytes resolves the segment-size default the engine applies.
func effSegBytes() int {
	if *segBytes != 0 {
		return *segBytes
	}
	return *recBytes * mmdb.DefaultRecordsPerSegment
}

// priceRun prices the run two ways: measured (the engine's activity
// counters priced with the paper's cost constants) and predicted (the
// analytic model evaluated at the run's geometry with the measured
// throughput as the arrival rate). Nil when the model rejects the
// operating point (e.g. a degenerate geometry).
func priceRun(db *mmdb.DB, st mmdb.Stats, alg mmdb.Algorithm, tput float64) *AnalyticJSON {
	p := analytic.DefaultParams()
	p.SRec = float64(*recBytes) / 4
	p.SSeg = float64(effSegBytes()) / 4
	p.SDB = float64(*records) * p.SRec
	p.NRU = float64(*updates)
	if tput > 0 {
		p.Lambda = tput
	}
	mPerTxn, mSync, mAsync, err := analytic.MeasuredOverhead(p, db.MeasuredCounts())
	if err != nil {
		fmt.Fprintln(os.Stderr, "ckptbench: measured pricing:", err)
		return nil
	}
	a := &AnalyticJSON{
		MeasuredOverheadPerTxn: mPerTxn,
		MeasuredSyncPerTxn:     mSync,
		MeasuredAsyncPerTxn:    mAsync,
		MeasuredPRestart:       st.PRestart(),
	}
	if st.Checkpoints > 0 {
		a.MeasuredSegsPerCkpt = float64(st.SegmentsFlushed) / float64(st.Checkpoints)
	}
	pred, err := analytic.Evaluate(p, analytic.Options{
		Algorithm:       alg,
		Full:            *full,
		StableTail:      *stable || alg == mmdb.FastFuzzy,
		IntervalSeconds: interval.Seconds(),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "ckptbench: analytic model:", err)
		return a
	}
	a.PredictedOverheadPerTxn = pred.OverheadPerTxn
	a.PredictedSyncPerTxn = pred.SyncOverheadPerTxn
	a.PredictedAsyncPerTxn = pred.AsyncOverheadPerTxn
	a.PredictedPRestart = pred.PRestart
	a.PredictedRecoverySecs = pred.RecoverySeconds
	a.PredictedSegsPerCkpt = pred.SegmentsPerCheckpoint
	return a
}

func avgCkpt(st mmdb.Stats) time.Duration {
	if st.Checkpoints == 0 {
		return 0
	}
	return st.TotalCheckpointTime / time.Duration(st.Checkpoints)
}
