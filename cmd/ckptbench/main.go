// Command ckptbench drives the real mmdb engine under the paper's load
// model: concurrent writers issue transactions of uniform record updates
// while the configured checkpoint algorithm maintains the backup database.
// At the end it optionally crashes the engine and times recovery, then
// reports throughput, checkpoint activity, the measured restart
// probability, and the run priced in the paper's instructions-per-
// transaction metric.
//
// Example:
//
//	ckptbench -alg 2CCOPY -records 65536 -txns 20000 -writers 4 -crash
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"mmdb"
	"mmdb/analytic"
	"mmdb/workload"
)

var (
	algName  = flag.String("alg", "COUCOPY", "checkpoint algorithm")
	records  = flag.Int("records", 1<<16, "number of records")
	recBytes = flag.Int("recbytes", 128, "record size in bytes")
	segBytes = flag.Int("segbytes", 0, "segment size in bytes (0 = 256 records)")
	txns     = flag.Int("txns", 20000, "transactions to run")
	updates  = flag.Int("updates", 5, "updates per transaction (the paper's N_ru)")
	writers  = flag.Int("writers", 4, "concurrent writer goroutines")
	interval = flag.Duration("interval", 0, "checkpoint interval (0 = back-to-back)")
	full     = flag.Bool("full", false, "full checkpoints")
	stable   = flag.Bool("stable", false, "stable log tail")
	syncCmt  = flag.Bool("sync", false, "synchronous commit")
	zipfS    = flag.Float64("zipf", 0, "Zipf skew (>1 enables skewed access; 0 = uniform, the paper's model)")
	tps      = flag.Float64("tps", 0, "target transaction arrival rate (Poisson, split across writers; 0 = unpaced)")
	crash    = flag.Bool("crash", false, "crash at the end and time recovery")
	dirFlag  = flag.String("dir", "", "database directory (default: a temp dir)")
	seed     = flag.Int64("seed", 1, "workload seed")
)

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ckptbench:", err)
		os.Exit(1)
	}
}

func run() error {
	alg, err := mmdb.ParseAlgorithm(*algName)
	if err != nil {
		return err
	}
	dir := *dirFlag
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "ckptbench-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
	}
	cfg := mmdb.Config{
		Dir:                 filepath.Clean(dir),
		NumRecords:          *records,
		RecordBytes:         *recBytes,
		SegmentBytes:        *segBytes,
		Algorithm:           alg,
		FullCheckpoints:     *full,
		StableLogTail:       *stable || alg == mmdb.FastFuzzy,
		SyncCommit:          *syncCmt,
		GroupCommitInterval: 2 * time.Millisecond,
		CheckpointInterval:  *interval,
		AutoCheckpoint:      true,
	}
	db, err := mmdb.Open(cfg)
	if err != nil {
		return err
	}

	fmt.Printf("engine: %v\n", db)
	fmt.Printf("load: %d txns × %d updates, %d writers, %s access\n\n",
		*txns, *updates, *writers, map[bool]string{true: "zipf", false: "uniform"}[*zipfS > 1])

	var done atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	perWriter := *txns / *writers
	for w := 0; w < *writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var gen workload.Generator
			var gerr error
			if *zipfS > 1 {
				gen, gerr = workload.NewZipf(*records, *updates, *recBytes, *zipfS, *seed+int64(w))
			} else {
				gen, gerr = workload.NewUniform(*records, *updates, *recBytes, *seed+int64(w))
			}
			if gerr != nil {
				fmt.Fprintln(os.Stderr, "ckptbench:", gerr)
				return
			}
			var pacer *workload.Pacer
			if *tps > 0 {
				pacer, gerr = workload.NewPacer(*tps/float64(*writers), true, *seed+100+int64(w))
				if gerr != nil {
					fmt.Fprintln(os.Stderr, "ckptbench:", gerr)
					return
				}
			}
			for i := 0; i < perWriter; i++ {
				if pacer != nil {
					pacer.Wait()
				}
				spec := gen.Next()
				err := db.Exec(func(tx *mmdb.Txn) error {
					for _, u := range spec.Updates {
						if err := tx.Write(u.Record, u.Value); err != nil {
							return err
						}
					}
					return nil
				})
				if err != nil {
					fmt.Fprintln(os.Stderr, "ckptbench: txn:", err)
					return
				}
				done.Add(1)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	db.StopCheckpointLoop()

	st := db.Stats()
	fmt.Printf("committed %d txns in %v (%.0f txn/s)\n", done.Load(), elapsed.Round(time.Millisecond),
		float64(done.Load())/elapsed.Seconds())
	fmt.Printf("checkpoints: %d completed, %d segments flushed (%.1f MB), %d skipped clean\n",
		st.Checkpoints, st.SegmentsFlushed, float64(st.BytesFlushed)/1e6, st.SegmentsSkipped)
	fmt.Printf("last checkpoint: %v; avg %v\n",
		st.LastCheckpointTime.Round(time.Microsecond), avgCkpt(st).Round(time.Microsecond))
	fmt.Printf("two-color: %d restarts of %d attempts (measured p_restart = %.4f)\n",
		st.ColorRestarts, st.TxnsBegun, st.PRestart())
	fmt.Printf("copy-on-update: %d old-version copies (%.1f MB), peak %d live\n",
		st.COUCopies, float64(st.COUCopyBytes)/1e6, st.COUPeakOld)
	fmt.Printf("log: %d appends, %d flushes, %.1f MB; locks: %d acquired, %d waits, %d timeouts\n",
		st.LogAppends, st.LogFlushes, float64(st.LogBytes)/1e6, st.LockAcquires, st.LockWaits, st.LockTimeouts)

	// Price the run in the paper's metric.
	perTxn, syncC, asyncC, err := analytic.MeasuredOverhead(analytic.DefaultParams(), db.MeasuredCounts())
	if err == nil {
		fmt.Printf("modeled checkpointing overhead: %.0f instructions/txn (sync %.0f + async %.0f)\n",
			perTxn, syncC, asyncC)
	}

	if !*crash {
		return db.Close()
	}

	fmt.Println("\ncrashing...")
	if err := db.Crash(); err != nil {
		return err
	}
	rstart := time.Now()
	db2, rep, err := mmdb.Recover(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("recovered in %v: checkpoint %d (copy %d, %s), %d segments loaded (%.1f MB), "+
		"%d log records scanned (%.1f MB), %d txns replayed, %d updates applied, %d discarded\n",
		time.Since(rstart).Round(time.Millisecond), rep.CheckpointID, rep.UsedCopy,
		rep.CheckpointAlgorithm, rep.SegmentsLoaded, float64(rep.BackupBytesRead)/1e6,
		rep.RecordsScanned, float64(rep.LogBytesRead)/1e6,
		rep.TxnsReplayed, rep.UpdatesApplied, rep.UpdatesDiscarded)
	return db2.Close()
}

func avgCkpt(st mmdb.Stats) time.Duration {
	if st.Checkpoints == 0 {
		return 0
	}
	return st.TotalCheckpointTime / time.Duration(st.Checkpoints)
}
