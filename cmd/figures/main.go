// Command figures regenerates every table and figure of the paper's
// evaluation (Salem & Garcia-Molina, "Checkpointing Memory-Resident
// Databases", Section 4) from the reconstructed analytic model, optionally
// cross-checked against the discrete-event simulator.
//
// Usage:
//
//	figures [-fig 4a|4b|4c|4d|4e|prestart|tables|all] [-sim] [-csv]
//
// With -sim, Figures 4a/4c/4e also print the simulator's measurements next
// to the model's. With -csv, series are emitted as CSV instead of aligned
// text.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"text/tabwriter"

	"mmdb/analytic"
	"mmdb/sim"
)

var (
	figFlag = flag.String("fig", "all", "figure to print: 4a, 4b, 4c, 4d, 4e, prestart, tables, or all")
	simFlag = flag.Bool("sim", false, "cross-check figures 4a/4c/4e against the discrete-event simulator")
	csvFlag = flag.Bool("csv", false, "emit CSV instead of aligned text")
	seed    = flag.Int64("seed", 1, "simulator seed")
)

func main() {
	flag.Parse()
	p := analytic.DefaultParams()
	which := strings.ToLower(*figFlag)
	all := which == "all"
	ran := false

	run := func(id string, fn func(analytic.Params) error) {
		if !all && which != id {
			return
		}
		ran = true
		if err := fn(p); err != nil {
			fmt.Fprintf(os.Stderr, "figures: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	run("tables", printTables)
	run("4a", printFigure4a)
	run("4b", printFigure4b)
	run("4c", printFigure4c)
	run("4d", printFigure4d)
	run("4e", printFigure4e)
	run("prestart", printPRestart)
	run("extensions", printExtensions)

	if !ran {
		fmt.Fprintf(os.Stderr, "figures: unknown figure %q\n", *figFlag)
		os.Exit(2)
	}
}

func newTab() *tabwriter.Writer {
	return tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
}

func emit(header []string, rows [][]string) {
	if *csvFlag {
		fmt.Println(strings.Join(header, ","))
		for _, r := range rows {
			fmt.Println(strings.Join(r, ","))
		}
		return
	}
	w := newTab()
	fmt.Fprintln(w, strings.Join(header, "\t"))
	for _, r := range rows {
		fmt.Fprintln(w, strings.Join(r, "\t"))
	}
	w.Flush()
}

func printTables(p analytic.Params) error {
	fmt.Println("== Tables 2a-2d: model parameters (paper defaults) ==")
	emit([]string{"symbol", "parameter", "value", "units"}, [][]string{
		{"C_lock", "(un)locking overhead", fmt.Sprintf("%.0f", p.CLock), "instructions"},
		{"C_alloc", "buffer (de)allocation overhead", fmt.Sprintf("%.0f", p.CAlloc), "instructions"},
		{"C_io", "I/O overhead", fmt.Sprintf("%.0f", p.CIO), "instructions"},
		{"C_lsn", "maintain LSNs", fmt.Sprintf("%.0f", p.CLSN), "instructions"},
		{"T_seek", "I/O delay time", fmt.Sprintf("%.2f", p.TSeek), "seconds"},
		{"T_trans", "transfer time constant", fmt.Sprintf("%.0f", p.TTrans*1e6), "µs/word"},
		{"N_bdisks", "number of disks", fmt.Sprintf("%.0f", p.NDisks), "disks"},
		{"S_db", "database size", fmt.Sprintf("%.0f", p.SDB/(1<<20)), "Mwords"},
		{"S_rec", "record size", fmt.Sprintf("%.0f", p.SRec), "words"},
		{"S_seg", "segment size", fmt.Sprintf("%.0f", p.SSeg), "words"},
		{"lambda", "arrival rate", fmt.Sprintf("%.0f", p.Lambda), "txns/second"},
		{"N_ru", "number of updates", fmt.Sprintf("%.0f", p.NRU), "records/txn"},
		{"C_trans", "transaction processor cost", fmt.Sprintf("%.0f", p.CTrans), "instructions"},
	})
	fmt.Printf("\nderived: N_seg=%.0f segments, u=%.0f updates/s, t_seg=%.4fs, flush rate=%.1f seg/s\n",
		p.NumSegments(), p.UpdateRate(), p.SegmentIOTime(), p.FlushRate())
	return nil
}

func simFor(p analytic.Params, o analytic.Options) (*sim.Result, error) {
	return sim.Run(sim.Config{Params: p, Options: o, Seed: *seed})
}

func printFigure4a(p analytic.Params) error {
	fig, err := analytic.Figure4a(p)
	if err != nil {
		return err
	}
	fmt.Println("== Figure 4a: Processor Overhead and Recovery Time (checkpoints ASAP, defaults) ==")
	header := []string{"algorithm", "overhead(instr/txn)", "sync", "async", "recovery(s)", "p_restart", "D(s)"}
	if *simFlag {
		header = append(header, "sim:overhead", "sim:recovery", "sim:p_restart")
	}
	var rows [][]string
	for _, s := range fig.Series {
		r := s.Points[0].Result
		row := []string{
			s.Name,
			fmt.Sprintf("%.0f", r.OverheadPerTxn),
			fmt.Sprintf("%.0f", r.SyncOverheadPerTxn),
			fmt.Sprintf("%.0f", r.AsyncOverheadPerTxn),
			fmt.Sprintf("%.1f", r.RecoverySeconds),
			fmt.Sprintf("%.3f", r.PRestart),
			fmt.Sprintf("%.1f", r.DurationSeconds),
		}
		if *simFlag {
			sr, err := simFor(p, r.Options)
			if err != nil {
				return err
			}
			row = append(row,
				fmt.Sprintf("%.0f", sr.OverheadPerTxn),
				fmt.Sprintf("%.1f", sr.RecoverySeconds),
				fmt.Sprintf("%.3f", sr.PRestart))
		}
		rows = append(rows, row)
	}
	emit(header, rows)
	return nil
}

func printFigure4b(p analytic.Params) error {
	fig, err := analytic.Figure4b(p, nil)
	if err != nil {
		return err
	}
	fmt.Println("== Figure 4b: Processor Overhead / Recovery Time Trade-off (vary interval; 1x and 2x bandwidth) ==")
	var rows [][]string
	for _, s := range fig.Series {
		for _, pt := range s.Points {
			rows = append(rows, []string{
				s.Name,
				fmt.Sprintf("%.1f", pt.X),
				fmt.Sprintf("%.0f", pt.Result.OverheadPerTxn),
				fmt.Sprintf("%.1f", pt.Result.RecoverySeconds),
				fmt.Sprintf("%.3f", pt.Result.PRestart),
			})
		}
	}
	emit([]string{"series", "interval(s)", "overhead(instr/txn)", "recovery(s)", "p_restart"}, rows)
	return nil
}

func printFigure4c(p analytic.Params) error {
	fig, err := analytic.Figure4c(p, nil)
	if err != nil {
		return err
	}
	fmt.Println("== Figure 4c: Effect of Varying Transaction Load (overhead/txn vs lambda, checkpoints ASAP) ==")
	// Pivot: one row per load, one column per algorithm.
	header := []string{"lambda"}
	for _, s := range fig.Series {
		header = append(header, s.Name)
	}
	if len(fig.Series) == 0 {
		return nil
	}
	var rows [][]string
	for i, pt := range fig.Series[0].Points {
		row := []string{fmt.Sprintf("%.0f", pt.X)}
		for _, s := range fig.Series {
			row = append(row, fmt.Sprintf("%.0f", s.Points[i].Result.OverheadPerTxn))
		}
		rows = append(rows, row)
	}
	emit(header, rows)
	if *simFlag {
		fmt.Println("\n-- simulator cross-check (COUCOPY and 2CFLUSH) --")
		var srows [][]string
		for _, lam := range analytic.DefaultLoadSweep {
			pp := p
			pp.Lambda = lam
			row := []string{fmt.Sprintf("%.0f", lam)}
			for _, alg := range []analytic.Algorithm{analytic.COUCopy, analytic.TwoColorFlush} {
				sr, err := simFor(pp, analytic.Options{Algorithm: alg})
				if err != nil {
					return err
				}
				row = append(row, fmt.Sprintf("%.0f", sr.OverheadPerTxn))
			}
			srows = append(srows, row)
		}
		emit([]string{"lambda", "sim:COUCOPY", "sim:2CFLUSH"}, srows)
	}
	return nil
}

func printFigure4d(p analytic.Params) error {
	fig, err := analytic.Figure4d(p, nil)
	if err != nil {
		return err
	}
	fmt.Println("== Figure 4d: Effect of Varying Segment Size (solid=ASAP, dotted=fixed 300s interval) ==")
	names := make([]string, 0, len(fig.Series))
	pts := map[string][]analytic.Point{}
	for _, s := range fig.Series {
		names = append(names, s.Name)
		pts[s.Name] = s.Points
	}
	sort.Strings(names)
	header := append([]string{"S_seg(words)"}, names...)
	var rows [][]string
	for i, seg := range analytic.DefaultSegmentSweep {
		row := []string{fmt.Sprintf("%.0f", seg)}
		for _, n := range names {
			row = append(row, fmt.Sprintf("%.0f", pts[n][i].Result.OverheadPerTxn))
		}
		rows = append(rows, row)
	}
	emit(header, rows)
	return nil
}

func printFigure4e(p analytic.Params) error {
	fig, err := analytic.Figure4e(p)
	if err != nil {
		return err
	}
	fmt.Println("== Figure 4e: Processor Overhead with Stable Log Tail (checkpoints ASAP) ==")
	header := []string{"algorithm", "overhead(instr/txn)", "sync", "async"}
	if *simFlag {
		header = append(header, "sim:overhead")
	}
	var rows [][]string
	for _, s := range fig.Series {
		r := s.Points[0].Result
		row := []string{
			s.Name,
			fmt.Sprintf("%.0f", r.OverheadPerTxn),
			fmt.Sprintf("%.0f", r.SyncOverheadPerTxn),
			fmt.Sprintf("%.0f", r.AsyncOverheadPerTxn),
		}
		if *simFlag {
			sr, err := simFor(p, r.Options)
			if err != nil {
				return err
			}
			row = append(row, fmt.Sprintf("%.0f", sr.OverheadPerTxn))
		}
		rows = append(rows, row)
	}
	emit(header, rows)
	return nil
}

func printPRestart(p analytic.Params) error {
	fmt.Println("== p_restart: checkpoint-induced restart probability (Section 4) ==")
	var rows [][]string
	for _, alg := range []analytic.Algorithm{analytic.TwoColorFlush, analytic.TwoColorCopy} {
		fig, err := analytic.PRestartCurve(p, alg, nil)
		if err != nil {
			return err
		}
		for _, pt := range fig.Series[0].Points {
			rows = append(rows, []string{
				alg.String(),
				fmt.Sprintf("%.1f", pt.X),
				fmt.Sprintf("%.3f", pt.Result.DutyCycle),
				fmt.Sprintf("%.3f", pt.Result.PRestart),
				fmt.Sprintf("%.2f", pt.Result.RestartsPerCommit),
			})
		}
	}
	emit([]string{"algorithm", "interval(s)", "duty", "p_restart", "reruns/commit"}, rows)
	// The correlated-retry extension.
	ind, err := analytic.Evaluate(p, analytic.Options{Algorithm: analytic.TwoColorCopy})
	if err != nil {
		return err
	}
	cor, err := analytic.Evaluate(p, analytic.Options{Algorithm: analytic.TwoColorCopy, Retry: analytic.CorrelatedRetries})
	if err != nil {
		return err
	}
	fmt.Printf("\nretry-model extension (2CCOPY, ASAP): independent p=%.3f (%.2f reruns) vs correlated p=%.3f (%.2f reruns)\n",
		ind.PRestart, ind.RestartsPerCommit, cor.PRestart, cor.RestartsPerCommit)
	return nil
}

// printExtensions reports the beyond-the-paper experiments: logical
// logging's log-volume/recovery effect, the COU old-copy buffer peak, and
// skewed-access checkpoint work (simulated at a scaled operating point).
func printExtensions(p analytic.Params) error {
	fmt.Println("== Extensions beyond the paper ==")

	phys := analytic.MustEvaluate(p, analytic.Options{Algorithm: analytic.COUCopy})
	logi := analytic.MustEvaluate(p, analytic.Options{Algorithm: analytic.COUCopy, LogicalLogging: true})
	fmt.Println("\n-- logical (operation) logging, COUCOPY at defaults --")
	emit([]string{"logging", "log words/s", "log read (s)", "recovery (s)", "overhead (instr/txn)"}, [][]string{
		{"physical", fmt.Sprintf("%.0f", phys.LogWordsPerSecond), fmt.Sprintf("%.2f", phys.LogReadSeconds),
			fmt.Sprintf("%.1f", phys.RecoverySeconds), fmt.Sprintf("%.0f", phys.OverheadPerTxn)},
		{"logical", fmt.Sprintf("%.0f", logi.LogWordsPerSecond), fmt.Sprintf("%.2f", logi.LogReadSeconds),
			fmt.Sprintf("%.1f", logi.RecoverySeconds), fmt.Sprintf("%.0f", logi.OverheadPerTxn)},
	})

	fmt.Printf("\n-- COU old-copy buffer (model): %.0f copies/ckpt peak ≈ %.1f Mwords (%.1f%% of the database) --\n",
		phys.COUCopiesPerCkpt, phys.COUOldBufferWords/1e6, 100*phys.COUOldBufferWords/p.SDB)

	// Skew: simulated at a scaled operating point (full scale runs too).
	sp := p
	sp.SDB = 4096 * 512
	sp.SSeg = 4096
	sp.Lambda = 200
	fmt.Println("\n-- skewed access (simulator, scaled: 512 segments, lambda=200, FUZZYCOPY) --")
	rows := [][]string{}
	for _, skew := range []float64{0, 1.2, 1.5} {
		res, err := sim.Run(sim.Config{
			Params:  sp,
			Options: analytic.Options{Algorithm: analytic.FuzzyCopy},
			Seed:    *seed,
			Skew:    skew,
		})
		if err != nil {
			return err
		}
		label := "uniform (paper)"
		if skew > 0 {
			label = fmt.Sprintf("zipf s=%.1f", skew)
		}
		rows = append(rows, []string{label,
			fmt.Sprintf("%.0f", res.SegmentsPerCheckpoint),
			fmt.Sprintf("%.2f", res.MeanDurationSeconds),
			fmt.Sprintf("%.0f", res.OverheadPerTxn)})
	}
	emit([]string{"access pattern", "segs/ckpt", "duration (s)", "overhead (instr/txn)"}, rows)
	return nil
}
