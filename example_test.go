package mmdb_test

import (
	"fmt"
	"log"
	"os"

	"mmdb"
)

// Example walks the full lifecycle: open, transact, checkpoint, crash,
// recover.
func Example() {
	dir, err := os.MkdirTemp("", "mmdb-example-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	cfg := mmdb.Config{
		Dir:         dir,
		NumRecords:  1024,
		RecordBytes: 64,
		Algorithm:   mmdb.COUCopy,
		SyncCommit:  true,
	}
	db, err := mmdb.Open(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// A transaction: read-modify-write with automatic retry on checkpoint
	// conflicts.
	err = db.Exec(func(tx *mmdb.Txn) error {
		return tx.Write(7, []byte("durable"))
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := db.Checkpoint(); err != nil {
		log.Fatal(err)
	}
	// Logical logging: the log carries an 8-byte delta, not a record image.
	err = db.Exec(func(tx *mmdb.Txn) error {
		return tx.ApplyOp(8, mmdb.OpAdd64, mmdb.Add64Operand(41))
	})
	if err != nil {
		log.Fatal(err)
	}

	// Simulate a system failure, then recover.
	if err := db.Crash(); err != nil {
		log.Fatal(err)
	}
	db2, rep, err := mmdb.Recover(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer db2.Close()

	v7, _ := db2.ReadRecord(7)
	v8, _ := db2.ReadRecord(8)
	fmt.Printf("recovered from checkpoint %d\n", rep.CheckpointID)
	fmt.Printf("record 7: %s\n", v7[:7])
	fmt.Printf("record 8: %d\n", v8[0])
	// Output:
	// recovered from checkpoint 1
	// record 7: durable
	// record 8: 41
}
