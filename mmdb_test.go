package mmdb

import (
	"encoding/binary"
	"errors"
	"testing"
	"time"

	"mmdb/internal/engine"
	"mmdb/workload"
)

func testConfig(t *testing.T, alg Algorithm) Config {
	t.Helper()
	cfg := Config{
		Dir:         t.TempDir(),
		NumRecords:  512,
		RecordBytes: 64,
		Algorithm:   alg,
		SyncCommit:  true,
	}
	if alg == FastFuzzy {
		cfg.StableLogTail = true
	}
	return cfg
}

func TestOpenExecReadBack(t *testing.T) {
	db, err := Open(testConfig(t, COUCopy))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	if err := db.Exec(func(tx *Txn) error {
		return tx.Write(7, []byte("hello"))
	}); err != nil {
		t.Fatal(err)
	}
	got, err := db.ReadRecord(7)
	if err != nil {
		t.Fatal(err)
	}
	if string(got[:5]) != "hello" {
		t.Errorf("read back %q", got[:5])
	}
	if db.NumRecords() != 512 || db.RecordBytes() != 64 {
		t.Errorf("geometry accessors wrong: %d × %d", db.NumRecords(), db.RecordBytes())
	}
	// Default segment size: 256 records/segment → 2 segments.
	if db.NumSegments() != 2 {
		t.Errorf("NumSegments = %d, want 2", db.NumSegments())
	}
}

func TestManualTxnLifecycle(t *testing.T) {
	db, err := Open(testConfig(t, FuzzyCopy))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if tx.ID() == 0 {
		t.Error("transaction ID should be nonzero")
	}
	if err := tx.Write(1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	v, err := tx.Read(1)
	if err != nil {
		t.Fatal(err)
	}
	if v[0] != 'x' {
		t.Error("own write not visible")
	}
	tx.Abort()
	if _, err := tx.Read(1); !errors.Is(err, ErrTxnDone) {
		t.Errorf("read after abort: %v", err)
	}
	got, err := db.ReadRecord(1)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0 {
		t.Error("aborted write installed")
	}
}

func TestConfigValidationErrors(t *testing.T) {
	cases := []Config{
		{},                        // everything missing
		{Dir: "x", NumRecords: 1}, // no record size / algorithm
		{Dir: "x", NumRecords: 1, RecordBytes: 8, Algorithm: Algorithm(99)},
		{Dir: "x", NumRecords: 1, RecordBytes: 8, SegmentBytes: 12, Algorithm: FuzzyCopy}, // not a multiple
		{Dir: "x", NumRecords: 1, RecordBytes: 8, Algorithm: FastFuzzy},                   // needs stable tail
	}
	for i, cfg := range cases {
		if _, err := Open(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestParseAlgorithmAndNames(t *testing.T) {
	for _, a := range Algorithms {
		got, err := ParseAlgorithm(a.String())
		if err != nil || got != a {
			t.Errorf("ParseAlgorithm(%q) = %v, %v", a.String(), got, err)
		}
	}
	if _, err := ParseAlgorithm("bogus"); err == nil {
		t.Error("bogus algorithm parsed")
	}
}

// TestAlgorithmListDerivedFromEngine: the public Algorithms list (which the
// crash matrix, ckptbench -matrix, and the analytic figures all iterate)
// is derived from the engine's enumeration — every engine algorithm maps
// to an analytic one with the same paper name, and the mapping through
// Config round-trips to the same engine value.
func TestAlgorithmListDerivedFromEngine(t *testing.T) {
	engAlgs := engine.AllAlgorithms()
	if len(Algorithms) != len(engAlgs) {
		t.Fatalf("mmdb.Algorithms has %d entries, engine has %d", len(Algorithms), len(engAlgs))
	}
	for i, a := range Algorithms {
		if got, want := a.String(), engAlgs[i].String(); got != want {
			t.Errorf("Algorithms[%d] = %s, engine lists %s", i, got, want)
		}
		cfg := Config{Dir: t.TempDir(), NumRecords: 16, RecordBytes: 8,
			Algorithm: a, StableLogTail: a == FastFuzzy}
		p, err := cfg.engineParams()
		if err != nil {
			t.Errorf("%v: engineParams: %v", a, err)
			continue
		}
		if p.Algorithm != engAlgs[i] {
			t.Errorf("%v maps to engine %v, want %v", a, p.Algorithm, engAlgs[i])
		}
	}
}

func TestCrashRecoverPublicAPI(t *testing.T) {
	cfg := testConfig(t, TwoColorCopy)
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		i := i
		if err := db.Exec(func(tx *Txn) error {
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], uint64(i+1))
			return tx.Write(uint64(i%db.NumRecords()), b[:])
		}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := db.Exec(func(tx *Txn) error {
		return tx.Write(3, []byte("post-checkpoint"))
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.Crash(); err != nil {
		t.Fatal(err)
	}

	// Open must refuse; Recover must work; OpenOrRecover must recover.
	if _, err := Open(cfg); !errors.Is(err, ErrExistingDatabase) {
		t.Fatalf("Open on crashed dir: %v, want ErrExistingDatabase", err)
	}
	db2, rep, err := OpenOrRecover(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if rep == nil || !rep.UsedCheckpoint {
		t.Fatalf("recovery report = %+v", rep)
	}
	got, err := db2.ReadRecord(3)
	if err != nil {
		t.Fatal(err)
	}
	if string(got[:15]) != "post-checkpoint" {
		t.Errorf("post-checkpoint write lost: %q", got[:15])
	}
}

func TestOpenOrRecoverFreshDir(t *testing.T) {
	cfg := testConfig(t, FuzzyCopy)
	db, rep, err := OpenOrRecover(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if rep != nil {
		t.Errorf("fresh open returned a recovery report: %+v", rep)
	}
}

// TestBankInvariantAcrossCrashes drives the bank workload with the
// checkpoint loop running, crashes, recovers, and checks the total-balance
// invariant — transaction atomicity end to end through the public API.
func TestBankInvariantAcrossCrashes(t *testing.T) {
	for _, alg := range Algorithms {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			cfg := testConfig(t, alg)
			cfg.AutoCheckpoint = true
			cfg.CheckpointInterval = 0
			db, err := Open(cfg)
			if err != nil {
				t.Fatal(err)
			}

			bank, err := workload.NewBank(64, cfg.RecordBytes, 1000, int64(alg))
			if err != nil {
				t.Fatal(err)
			}
			if err := db.Exec(func(tx *Txn) error { return bank.InitTxn(tx) }); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 100; i++ {
				from, to, amt := bank.RandomTransfer()
				if err := db.Exec(func(tx *Txn) error {
					return bank.Transfer(tx, from, to, amt)
				}); err != nil {
					t.Fatalf("transfer %d: %v", i, err)
				}
			}
			if err := db.Crash(); err != nil {
				t.Fatal(err)
			}

			db2, _, err := Recover(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer db2.Close()
			total, err := bank.Total(db2.ReadRecord)
			if err != nil {
				t.Fatal(err)
			}
			if total != bank.ExpectedTotal() {
				t.Errorf("total balance after crash = %d, want %d (atomicity broken)",
					total, bank.ExpectedTotal())
			}
		})
	}
}

func TestCheckpointLoopThroughAPI(t *testing.T) {
	cfg := testConfig(t, FastFuzzy)
	cfg.CheckpointInterval = time.Millisecond
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.StartCheckpointLoop()
	deadline := time.Now().Add(5 * time.Second)
	for db.Stats().Checkpoints < 2 {
		if time.Now().After(deadline) {
			t.Fatal("no checkpoints")
		}
		time.Sleep(time.Millisecond)
	}
	db.StopCheckpointLoop()
}

func TestStatsAndStringers(t *testing.T) {
	cfg := testConfig(t, COUFlush)
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Exec(func(tx *Txn) error { return tx.Write(0, []byte("a")) }); err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	if st.TxnsCommitted != 1 {
		t.Errorf("stats: %+v", st)
	}
	if db.String() == "" || db.Dir() != cfg.Dir {
		t.Error("String/Dir broken")
	}
	if db.Config().Algorithm != COUFlush {
		t.Error("Config() round trip broken")
	}
}
