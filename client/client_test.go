package client_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"mmdb"
	"mmdb/client"
	"mmdb/internal/faultfs"
	"mmdb/internal/server"
	"mmdb/internal/shard"
	"mmdb/kvstore"
	"mmdb/kvstore/storetest"
)

func testConfig(t *testing.T, shards int) mmdb.Config {
	t.Helper()
	return mmdb.Config{
		Dir:         t.TempDir(),
		NumRecords:  1024,
		RecordBytes: 128,
		Algorithm:   mmdb.COUCopy,
		SyncCommit:  true,
		Shards:      shards,
	}
}

// harness is one live stack: router -> server -> TCP -> client.
type harness struct {
	router *shard.Router
	srv    *server.Server
	addr   string
	cli    *client.Client
}

// start brings up a server on a fresh loopback port over an existing
// router and dials one client. Cleanup tears the whole stack down.
func start(t *testing.T, router *shard.Router) *harness {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	srv := server.New(router)
	done := make(chan struct{})
	// goleak:joins t.Cleanup below waits on done after Shutdown
	go func() {
		defer close(done)
		srv.Serve(ln) //nolint:errcheck // exits with a closed-listener error on Shutdown
	}()
	cli, err := client.Dial(ln.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	h := &harness{router: router, srv: srv, addr: ln.Addr().String(), cli: cli}
	t.Cleanup(func() {
		cli.Close() //nolint:errcheck // double-closes are fine in teardown
		srv.Shutdown()
		<-done
		router.Close() //nolint:errcheck // router may have been crashed by the test
	})
	return h
}

func openRouter(t *testing.T, cfg mmdb.Config) (*shard.Router, []*mmdb.RecoveryReport) {
	t.Helper()
	r, reps, err := shard.Open(context.Background(), cfg)
	if err != nil {
		t.Fatalf("shard.Open: %v", err)
	}
	return r, reps
}

// TestClientConformance: the network client against a live 4-shard
// server passes the identical interface suite as the in-process store —
// the transport is invisible to the contract.
func TestClientConformance(t *testing.T) {
	storetest.Run(t, func(t *testing.T) kvstore.Store {
		r, _ := openRouter(t, testConfig(t, 4))
		return start(t, r).cli
	})
}

// TestClientServerAllAlgorithms round-trips writes through the network
// stack for every checkpoint algorithm, checkpoints, crashes, recovers,
// and reads the data back through a fresh server.
func TestClientServerAllAlgorithms(t *testing.T) {
	ctx := context.Background()
	for _, alg := range mmdb.Algorithms {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			t.Parallel()
			cfg := testConfig(t, 2)
			cfg.Algorithm = alg
			cfg.StableLogTail = alg.RequiresStableTail()
			r, _ := openRouter(t, cfg)
			h := start(t, r)

			val := func(i int, gen string) []byte { return []byte(fmt.Sprintf("%s-%04d", gen, i)) }
			for i := 0; i < 64; i++ {
				if err := h.cli.Put(ctx, val(i, "key"), val(i, "old")); err != nil {
					t.Fatalf("Put: %v", err)
				}
			}
			if err := r.Checkpoint(ctx); err != nil {
				t.Fatalf("Checkpoint: %v", err)
			}
			for i := 0; i < 32; i++ {
				if err := h.cli.Put(ctx, val(i, "key"), val(i, "new")); err != nil {
					t.Fatalf("post-ckpt Put: %v", err)
				}
			}
			st, err := h.cli.Stats(ctx)
			if err != nil {
				t.Fatalf("Stats: %v", err)
			}
			if len(st.Shards) != 2 || st.Len() != 64 {
				t.Fatalf("stats over the wire: %d shards, Len %d; want 2, 64", len(st.Shards), st.Len())
			}

			h.cli.Close() //nolint:errcheck // tearing the stack down mid-test
			h.srv.Shutdown()
			if err := r.Crash(); err != nil {
				t.Fatalf("Crash: %v", err)
			}

			r2, reps := openRouter(t, cfg)
			for i, rep := range reps {
				if rep == nil || !rep.UsedCheckpoint {
					t.Fatalf("shard %d: recovery did not use the %v checkpoint (report %+v)", i, alg, rep)
				}
			}
			h2 := start(t, r2)
			for i := 0; i < 64; i++ {
				want := val(i, "old")
				if i < 32 {
					want = val(i, "new")
				}
				got, ok, err := h2.cli.Get(ctx, val(i, "key"))
				if err != nil || !ok || !bytes.Equal(got, want) {
					t.Fatalf("key %d after recovery = %q ok %v err %v, want %q", i, got, ok, err, want)
				}
			}
		})
	}
}

// TestKillServerPerShardRecovery reuses the faultfs crash machinery
// under a live network stack: a client-driven workload runs until an
// injected WAL-write crash halts the store mid-operation, the server is
// torn down hard, and each shard must then recover every acknowledged
// write from its own log and checkpoint.
func TestKillServerPerShardRecovery(t *testing.T) {
	ctx := context.Background()
	const seed = 47
	rng := rand.New(rand.NewSource(seed))

	inj := faultfs.New(seed)
	inj.Arm(faultfs.Rule{Point: "wal.write", Kind: faultfs.Crash, AtHit: 40})
	cfg := testConfig(t, 4)
	cfg.FS = inj.FS(nil)

	r, _ := openRouter(t, cfg)
	h := start(t, r)

	// oracle maps key -> value for every acknowledged network write.
	oracle := map[string]string{}
	for i := 0; i < 600 && !inj.Halted(); i++ {
		key := fmt.Sprintf("key-%03d", rng.Intn(120))
		val := fmt.Sprintf("val-%d-%d", i, rng.Int63())
		if err := h.cli.Put(ctx, []byte(key), []byte(val)); err == nil {
			oracle[key] = val
		} else if !inj.Halted() {
			// Before the fault fires, every network write must succeed;
			// after it, errors of any shape are the crash surfacing
			// (ErrCommitInDoubt and ErrStopped keep their identity even
			// across the wire).
			t.Fatalf("Put %s failed before the injected crash: %v", key, err)
		} else if !errors.Is(err, mmdb.ErrStopped) && !errors.Is(err, mmdb.ErrCommitInDoubt) &&
			!errors.Is(err, client.ErrClosed) {
			t.Logf("post-crash Put %s: %v", key, err)
		}
		if i == 100 {
			if err := r.Checkpoint(ctx); err != nil {
				t.Fatalf("Checkpoint: %v", err)
			}
		}
	}
	if !inj.Halted() {
		t.Fatal("injected wal.write crash never fired")
	}

	// Kill the server: close the socket out from under the client, shut
	// the front end down, and drop the engines' volatile state.
	h.cli.Close() //nolint:errcheck // simulating a killed process
	h.srv.Shutdown()
	_ = r.Crash() // the halted injector makes teardown itself error; that's the point

	rcfg := cfg
	rcfg.FS = nil
	r2, reps := openRouter(t, rcfg)
	if len(reps) != 4 {
		t.Fatalf("got %d recovery reports, want 4", len(reps))
	}
	for i, rep := range reps {
		if rep == nil {
			t.Fatalf("shard %d produced no recovery report after the crash", i)
		}
	}
	h2 := start(t, r2)
	for key, want := range oracle {
		got, found, err := h2.cli.Get(ctx, []byte(key))
		if err != nil {
			t.Fatalf("Get %s after recovery: %v", key, err)
		}
		if !found || string(got) != want {
			t.Fatalf("acknowledged write lost: %s = %q (found=%v), want %q", key, got, found, want)
		}
	}
}

// TestNetworkSingleShardEquivalence extends the byte-level upgrade
// guarantee across the transport: the same ops through a network client
// against a Shards=1 server recover to the identical primary image as a
// plain in-process kvstore.Local.
func TestNetworkSingleShardEquivalence(t *testing.T) {
	ctx := context.Background()
	plainCfg := testConfig(t, 0)
	routedCfg := testConfig(t, 1)

	apply := func(s kvstore.Store) {
		t.Helper()
		for i := 0; i < 200; i++ {
			k := []byte(fmt.Sprintf("key-%04d", i))
			if err := s.Put(ctx, k, []byte(fmt.Sprintf("val-%04d", i))); err != nil {
				t.Fatalf("Put: %v", err)
			}
		}
		if err := s.Batch(ctx, []kvstore.Op{
			{Key: []byte("key-0000"), Delete: true},
			{Key: []byte("key-0001"), Val: []byte("rewritten")},
		}); err != nil {
			t.Fatalf("Batch: %v", err)
		}
	}

	plain, _, err := kvstore.Open(plainCfg)
	if err != nil {
		t.Fatal(err)
	}
	apply(plain)
	if _, err := plain.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := plain.Crash(); err != nil {
		t.Fatal(err)
	}
	plain2, rep, err := kvstore.Open(plainCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer plain2.Close()
	if rep == nil {
		t.Fatal("plain store did not recover")
	}

	r, _ := openRouter(t, routedCfg)
	h := start(t, r)
	apply(h.cli) // the only difference: every op crosses the wire
	if err := r.Checkpoint(ctx); err != nil {
		t.Fatal(err)
	}
	h.cli.Close() //nolint:errcheck // simulating a killed process
	h.srv.Shutdown()
	if err := r.Crash(); err != nil {
		t.Fatal(err)
	}
	r2, reps := openRouter(t, routedCfg)
	defer r2.Close()
	if len(reps) != 1 || reps[0] == nil {
		t.Fatal("routed store did not recover")
	}

	dbA, dbB := plain2.DB(), r2.Shard(0).DB()
	if dbA.NumRecords() != dbB.NumRecords() {
		t.Fatalf("record counts differ: %d vs %d", dbA.NumRecords(), dbB.NumRecords())
	}
	for rid := uint64(0); rid < uint64(dbA.NumRecords()); rid++ {
		a, err := dbA.ReadRecord(rid)
		if err != nil {
			t.Fatal(err)
		}
		b, err := dbB.ReadRecord(rid)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("record %d differs between in-process and network-written images", rid)
		}
	}
}

// TestClientPipelining issues many concurrent requests over one
// connection; request IDs must demultiplex every response back to its
// caller intact.
func TestClientPipelining(t *testing.T) {
	ctx := context.Background()
	r, _ := openRouter(t, testConfig(t, 4))
	h := start(t, r)

	const workers, perWorker = 8, 50
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		// goleak:joins wg.Wait below
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				k := []byte(fmt.Sprintf("w%d-k%03d", w, i))
				v := []byte(fmt.Sprintf("w%d-v%03d", w, i))
				if err := h.cli.Put(ctx, k, v); err != nil {
					errs <- fmt.Errorf("put %s: %w", k, err)
					return
				}
				got, ok, err := h.cli.Get(ctx, k)
				if err != nil || !ok || !bytes.Equal(got, v) {
					errs <- fmt.Errorf("get %s = %q ok %v err %v", k, got, ok, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st, err := h.cli.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Len() != workers*perWorker {
		t.Fatalf("Len = %d, want %d", st.Len(), workers*perWorker)
	}
}

// TestClientErrorsAcrossWire: the store's sentinel errors survive the
// network and in-flight requests fail cleanly when the client closes.
func TestClientErrorsAcrossWire(t *testing.T) {
	ctx := context.Background()
	r, _ := openRouter(t, testConfig(t, 2))
	h := start(t, r)

	if err := h.cli.Put(ctx, nil, []byte("v")); !errors.Is(err, kvstore.ErrEmptyKey) {
		t.Errorf("empty key err = %v, want ErrEmptyKey", err)
	}
	if err := h.cli.Put(ctx, []byte("k"), bytes.Repeat([]byte("v"), 64<<10)); !errors.Is(err, kvstore.ErrValueTooLarge) {
		t.Errorf("oversized value err = %v, want ErrValueTooLarge", err)
	}
	if err := h.cli.Put(ctx, bytes.Repeat([]byte("k"), 1<<16), []byte("v")); !errors.Is(err, kvstore.ErrKeyTooLarge) {
		t.Errorf("oversized key err = %v, want ErrKeyTooLarge", err)
	}

	if err := h.cli.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := h.cli.Put(ctx, []byte("k"), []byte("v")); !errors.Is(err, client.ErrClosed) {
		t.Errorf("post-close Put err = %v, want ErrClosed", err)
	}
}

// TestClientContextTimeout: a server that accepts but never answers
// must not hang a request past its deadline.
func TestClientContextTimeout(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	// goleak:joins the deferred drain below joins via the accepted channel
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		accepted <- conn // hold the conn open, answer nothing
	}()
	defer func() {
		select {
		case conn := <-accepted:
			conn.Close() //nolint:errcheckwal // test teardown
		default:
		}
	}()

	cli, err := client.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, gerr := cli.Get(ctx, []byte("k"))
	if !errors.Is(gerr, context.DeadlineExceeded) {
		t.Fatalf("Get against mute server = %v, want DeadlineExceeded", gerr)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline took %v to fire", elapsed)
	}
}
