// Package client is the mmdbd network client. A Client implements
// kvstore.Store over one TCP connection, so code written against the
// in-process store — including the shared conformance suite and
// ckptbench — drives a remote sharded server unchanged.
//
// The connection is fully pipelined: every request carries a
// client-chosen request ID, many may be in flight at once from any
// number of goroutines, and the server may complete them out of order.
// A background reader demultiplexes responses back to their waiters by
// ID. Sentinel errors (kvstore.ErrFull, ErrEmptyKey, context.Canceled,
// ...) survive the wire: errors.Is works on errors a Client returns
// exactly as it does in-process.
package client

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"context"

	"mmdb/internal/netproto"
	"mmdb/kvstore"
)

// ErrClosed is returned by operations on a closed client, and by
// requests in flight when the connection drops.
var ErrClosed = errors.New("client: connection closed")

// response is one demultiplexed server frame; Pay is owned by the
// waiter (the reader copies it out of its reusable buffer).
type response struct {
	typ byte
	pay []byte
}

// Client is a kvstore.Store backed by one pipelined mmdbd connection.
// It is safe for concurrent use.
type Client struct {
	conn net.Conn

	// wmu serializes frame writes so concurrent requests interleave at
	// frame granularity, never mid-frame.
	wmu sync.Mutex // lockorder:level=2

	seq atomic.Uint64

	mu sync.Mutex // lockorder:level=3
	// pending maps in-flight request IDs to their waiters' channels
	// (buffered, capacity 1). guarded_by:mu
	pending map[uint64]chan response
	// err is the sticky connection error once the reader exits.
	// guarded_by:mu
	err error
	// closed is set by Close; distinguishes deliberate shutdown from a
	// dropped connection. guarded_by:mu
	closed bool

	readerDone chan struct{}
}

// Dial connects to an mmdbd server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("client: dial %s: %w", addr, err)
	}
	return New(conn), nil
}

// New wraps an established connection (ownership transfers to the
// Client).
func New(conn net.Conn) *Client {
	c := &Client{
		conn:       conn,
		pending:    make(map[uint64]chan response),
		readerDone: make(chan struct{}),
	}
	// goleak:joins Close waits on c.readerDone
	go c.readLoop()
	return c
}

// readLoop demultiplexes response frames to waiters until the
// connection dies, then fails everything still pending.
func (c *Client) readLoop() {
	defer close(c.readerDone)
	var buf []byte
	for {
		frame, b, err := netproto.ReadFrame(c.conn, buf)
		buf = b
		if err != nil {
			c.fail(err)
			return
		}
		c.mu.Lock()
		ch, ok := c.pending[frame.ReqID]
		if ok {
			delete(c.pending, frame.ReqID)
		}
		c.mu.Unlock()
		if !ok {
			continue // waiter gave up (context cancelled); drop the late response
		}
		// The payload aliases buf, which the next ReadFrame overwrites;
		// the waiter owns a copy.
		ch <- response{typ: frame.Type, pay: append([]byte(nil), frame.Pay...)}
	}
}

// fail marks the connection dead and releases every waiter.
func (c *Client) fail(cause error) {
	c.mu.Lock()
	if c.err == nil {
		if c.closed {
			c.err = ErrClosed
		} else {
			c.err = fmt.Errorf("%w: %v", ErrClosed, cause)
		}
	}
	pending := c.pending
	c.pending = make(map[uint64]chan response)
	err := c.err
	c.mu.Unlock()
	for _, ch := range pending {
		ch <- response{typ: netproto.TErrResp, pay: netproto.AppendErrResp(nil, err)}
	}
}

// Close shuts the connection down and joins the reader. In-flight
// requests fail with ErrClosed.
func (c *Client) Close() error {
	c.mu.Lock()
	already := c.closed
	c.closed = true
	c.mu.Unlock()
	if already {
		<-c.readerDone
		return nil
	}
	err := c.conn.Close()
	<-c.readerDone
	return err
}

// roundTrip sends one frame and waits for its response (or ctx).
func (c *Client) roundTrip(ctx context.Context, typ byte, pay []byte) (response, error) {
	if err := ctx.Err(); err != nil {
		return response{}, err
	}
	id := c.seq.Add(1)
	ch := make(chan response, 1)

	c.mu.Lock()
	if c.err != nil || c.closed {
		err := c.err
		c.mu.Unlock()
		if err == nil {
			err = ErrClosed
		}
		return response{}, err
	}
	c.pending[id] = ch
	c.mu.Unlock()

	c.wmu.Lock()
	werr := netproto.WriteFrame(c.conn, typ, id, pay)
	c.wmu.Unlock()
	if werr != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return response{}, fmt.Errorf("client: send: %w", werr)
	}

	select {
	case resp := <-ch:
		if resp.typ == netproto.TErrResp {
			return response{}, netproto.DecodeErrResp(resp.pay)
		}
		return resp, nil
	case <-ctx.Done():
		// Deregister so the reader drops the eventual late response. The
		// server may still apply the operation: cancellation here is
		// "stop waiting", not "undo".
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return response{}, ctx.Err()
	}
}

// checkKey rejects keys the wire format cannot carry, mirroring the
// store's own error contract without a round trip.
func checkKey(key []byte) error {
	if len(key) == 0 {
		return kvstore.ErrEmptyKey
	}
	if len(key) > 1<<16-1 {
		return fmt.Errorf("%w: %d bytes exceeds the wire format's 64 KiB key limit", kvstore.ErrKeyTooLarge, len(key))
	}
	return nil
}

// Get fetches a key. The returned value is owned by the caller.
func (c *Client) Get(ctx context.Context, key []byte) ([]byte, bool, error) {
	if err := checkKey(key); err != nil {
		return nil, false, err
	}
	resp, err := c.roundTrip(ctx, netproto.TGet, netproto.AppendKey(nil, key))
	if err != nil {
		return nil, false, err
	}
	if resp.typ != netproto.TValueResp {
		return nil, false, fmt.Errorf("client: unexpected response type 0x%02x to Get", resp.typ)
	}
	return netproto.DecodeValueResp(resp.pay)
}

// Put stores a key/value pair.
func (c *Client) Put(ctx context.Context, key, val []byte) error {
	if err := checkKey(key); err != nil {
		return err
	}
	resp, err := c.roundTrip(ctx, netproto.TPut, netproto.AppendPut(nil, key, val))
	if err != nil {
		return err
	}
	if resp.typ != netproto.TOKResp {
		return fmt.Errorf("client: unexpected response type 0x%02x to Put", resp.typ)
	}
	return nil
}

// Delete removes a key, reporting whether it existed.
func (c *Client) Delete(ctx context.Context, key []byte) (bool, error) {
	if err := checkKey(key); err != nil {
		return false, err
	}
	resp, err := c.roundTrip(ctx, netproto.TDelete, netproto.AppendKey(nil, key))
	if err != nil {
		return false, err
	}
	if resp.typ != netproto.TOKResp {
		return false, fmt.Errorf("client: unexpected response type 0x%02x to Delete", resp.typ)
	}
	return netproto.DecodeOKResp(resp.pay)
}

// Batch applies ops with the server's batch semantics: atomic per
// shard, best-effort across shards (see shard.Router.Batch).
func (c *Client) Batch(ctx context.Context, ops []kvstore.Op) error {
	for i, op := range ops {
		if err := checkKey(op.Key); err != nil {
			return fmt.Errorf("client: batch op %d: %w", i, err)
		}
	}
	resp, err := c.roundTrip(ctx, netproto.TBatch, netproto.AppendBatch(nil, ops))
	if err != nil {
		return err
	}
	if resp.typ != netproto.TOKResp {
		return fmt.Errorf("client: unexpected response type 0x%02x to Batch", resp.typ)
	}
	return nil
}

// Stats reports the server's per-shard statistics.
func (c *Client) Stats(ctx context.Context) (kvstore.StoreStats, error) {
	resp, err := c.roundTrip(ctx, netproto.TStats, nil)
	if err != nil {
		return kvstore.StoreStats{}, err
	}
	if resp.typ != netproto.TStatsResp {
		return kvstore.StoreStats{}, fmt.Errorf("client: unexpected response type 0x%02x to Stats", resp.typ)
	}
	var st kvstore.StoreStats
	if err := json.Unmarshal(resp.pay, &st); err != nil {
		return kvstore.StoreStats{}, fmt.Errorf("client: decoding stats: %w", err)
	}
	return st, nil
}

// Client implements the transport-agnostic store API.
var _ kvstore.Store = (*Client)(nil)
