package sim

import (
	"math"
	"testing"

	"mmdb/analytic"
)

// smallParams shrinks the database so simulation runs are quick while
// keeping the same qualitative regime (bandwidth-limited checkpoints).
func smallParams() analytic.Params {
	p := analytic.DefaultParams()
	p.SDB = 4096 * 512 // 512 segments
	p.SSeg = 4096
	p.Lambda = 200
	return p
}

func TestConfigValidation(t *testing.T) {
	p := smallParams()
	if _, err := Run(Config{Params: p, Options: analytic.Options{Algorithm: analytic.Algorithm(0)}}); err == nil {
		t.Error("invalid algorithm accepted")
	}
	bad := p
	bad.NDisks = 0
	if _, err := Run(Config{Params: bad, Options: analytic.Options{Algorithm: analytic.FuzzyCopy}}); err == nil {
		t.Error("invalid params accepted")
	}
	if _, err := Run(Config{Params: p, Options: analytic.Options{Algorithm: analytic.FuzzyCopy}, Checkpoints: -1}); err == nil {
		t.Error("negative checkpoint count accepted")
	}
	frac := p
	frac.SDB = p.SSeg * 10.5
	if _, err := Run(Config{Params: frac, Options: analytic.Options{Algorithm: analytic.FuzzyCopy}}); err == nil {
		t.Error("fractional segment count accepted")
	}
}

func TestDeterministicForSeed(t *testing.T) {
	p := smallParams()
	o := analytic.Options{Algorithm: analytic.TwoColorCopy}
	a, err := Run(Config{Params: p, Options: o, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Config{Params: p, Options: o, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if a.OverheadPerTxn != b.OverheadPerTxn || a.TxnsCommitted != b.TxnsCommitted ||
		a.ColorAborts != b.ColorAborts {
		t.Error("same seed produced different results")
	}
	c, err := Run(Config{Params: p, Options: o, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	if a.TxnsCommitted == c.TxnsCommitted && a.OverheadPerTxn == c.OverheadPerTxn {
		t.Error("different seeds produced identical results (suspicious)")
	}
}

// within reports whether got is within frac of want.
func within(got, want, frac float64) bool {
	if want == 0 {
		return math.Abs(got) < 1e-9
	}
	return math.Abs(got-want)/math.Abs(want) <= frac
}

// TestAgreesWithAnalyticModel runs every algorithm at the same (scaled)
// operating point through both the simulator and the analytic model and
// requires the headline outputs to agree within tolerance. This is the
// central cross-validation of the reproduction.
func TestAgreesWithAnalyticModel(t *testing.T) {
	p := smallParams()
	for _, alg := range analytic.Algorithms {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			o := analytic.Options{Algorithm: alg}
			if alg.RequiresStableTail() {
				o.StableTail = true
			}
			simRes, anaRes, err := Compare(p, o, 1)
			if err != nil {
				t.Fatal(err)
			}
			if !within(simRes.MeanDurationSeconds, anaRes.DurationSeconds, 0.15) {
				t.Errorf("duration: sim %.2fs vs model %.2fs", simRes.MeanDurationSeconds, anaRes.DurationSeconds)
			}
			if !within(simRes.SegmentsPerCheckpoint, anaRes.SegmentsPerCheckpoint, 0.15) {
				t.Errorf("segments/ckpt: sim %.0f vs model %.0f", simRes.SegmentsPerCheckpoint, anaRes.SegmentsPerCheckpoint)
			}
			if !within(simRes.OverheadPerTxn, anaRes.OverheadPerTxn, 0.25) {
				t.Errorf("overhead/txn: sim %.0f vs model %.0f", simRes.OverheadPerTxn, anaRes.OverheadPerTxn)
			}
			if !within(simRes.RecoverySeconds, anaRes.RecoverySeconds, 0.15) {
				t.Errorf("recovery: sim %.1fs vs model %.1fs", simRes.RecoverySeconds, anaRes.RecoverySeconds)
			}
			if alg.TwoColor() {
				if math.Abs(simRes.PRestart-anaRes.PRestart) > 0.07 {
					t.Errorf("p_restart: sim %.3f vs model %.3f", simRes.PRestart, anaRes.PRestart)
				}
			} else if simRes.ColorAborts != 0 {
				t.Errorf("%v aborted %d transactions; only two-color algorithms abort", alg, simRes.ColorAborts)
			}
			if alg.PreservesOldVersions() {
				if !within(simRes.COUCopiesPerCkpt, anaRes.COUCopiesPerCkpt, 0.25) {
					t.Errorf("COU copies/ckpt: sim %.0f vs model %.0f", simRes.COUCopiesPerCkpt, anaRes.COUCopiesPerCkpt)
				}
			} else if simRes.COUCopies != 0 {
				t.Errorf("%v made COU copies", alg)
			}
			if alg == analytic.Zigzag {
				if !within(simRes.ZigzagFlipsPerCkpt, anaRes.ZigzagFlipsPerCkpt, 0.25) {
					t.Errorf("zigzag flips/ckpt: sim %.0f vs model %.0f", simRes.ZigzagFlipsPerCkpt, anaRes.ZigzagFlipsPerCkpt)
				}
			} else if simRes.ZigzagFlips != 0 {
				t.Errorf("%v flipped images", alg)
			}
		})
	}
}

// TestSimFigure4aOrdering reruns Figure 4a's qualitative ordering on the
// simulator alone.
func TestSimFigure4aOrdering(t *testing.T) {
	p := smallParams()
	// Use the paper's load so checkpoint work amortizes over many
	// transactions, as in Figure 4a's regime.
	p.Lambda = 1000
	overhead := map[analytic.Algorithm]float64{}
	for _, alg := range []analytic.Algorithm{
		analytic.FuzzyCopy, analytic.TwoColorFlush, analytic.TwoColorCopy,
		analytic.COUFlush, analytic.COUCopy,
	} {
		res, err := Run(Config{Params: p, Options: analytic.Options{Algorithm: alg}, Seed: 5})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		overhead[alg] = res.OverheadPerTxn
	}
	for _, tc := range []analytic.Algorithm{analytic.TwoColorFlush, analytic.TwoColorCopy} {
		for _, other := range []analytic.Algorithm{analytic.FuzzyCopy, analytic.COUFlush, analytic.COUCopy} {
			if overhead[tc] < 2*overhead[other] {
				t.Errorf("%v (%.0f) should cost well above %v (%.0f)", tc, overhead[tc], other, overhead[other])
			}
		}
	}
	if overhead[analytic.COUCopy] > 1.4*overhead[analytic.FuzzyCopy] {
		t.Errorf("COUCOPY (%.0f) should cost about the same as FUZZYCOPY (%.0f)",
			overhead[analytic.COUCopy], overhead[analytic.FuzzyCopy])
	}
}

// TestCorrelatedRetriesAgreeWithModel cross-validates the correlated
// (immediate-rerun) retry extension between simulator and analytic model.
func TestCorrelatedRetriesAgreeWithModel(t *testing.T) {
	p := smallParams()
	o := analytic.Options{Algorithm: analytic.TwoColorCopy, Retry: analytic.CorrelatedRetries}
	simRes, anaRes, err := Compare(p, o, 9)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(simRes.PRestart-anaRes.PRestart) > 0.07 {
		t.Errorf("p_restart: sim %.3f vs model %.3f", simRes.PRestart, anaRes.PRestart)
	}
	if !within(simRes.OverheadPerTxn, anaRes.OverheadPerTxn, 0.3) {
		t.Errorf("overhead: sim %.0f vs model %.0f", simRes.OverheadPerTxn, anaRes.OverheadPerTxn)
	}
	// And the extension finding: correlated costs more than independent.
	indep, err := Run(Config{Params: p, Options: analytic.Options{Algorithm: analytic.TwoColorCopy}, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if simRes.PRestart <= indep.PRestart {
		t.Errorf("correlated p_restart %.3f not above independent %.3f",
			simRes.PRestart, indep.PRestart)
	}
}

// TestLongerIntervalLowersOverhead checks the Figure 4b direction on the
// simulator.
func TestLongerIntervalLowersOverhead(t *testing.T) {
	p := smallParams()
	for _, alg := range []analytic.Algorithm{analytic.TwoColorCopy, analytic.COUCopy} {
		asap, err := Run(Config{Params: p, Options: analytic.Options{Algorithm: alg}, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		relaxed, err := Run(Config{
			Params:  p,
			Options: analytic.Options{Algorithm: alg, IntervalSeconds: 3 * asap.MeanDurationSeconds},
			Seed:    2,
		})
		if err != nil {
			t.Fatal(err)
		}
		if relaxed.OverheadPerTxn >= asap.OverheadPerTxn {
			t.Errorf("%v: 3× interval overhead %.0f not below ASAP %.0f",
				alg, relaxed.OverheadPerTxn, asap.OverheadPerTxn)
		}
		if relaxed.RecoverySeconds <= asap.RecoverySeconds {
			t.Errorf("%v: 3× interval recovery %.1f not above ASAP %.1f",
				alg, relaxed.RecoverySeconds, asap.RecoverySeconds)
		}
		if alg.TwoColor() && relaxed.PRestart >= asap.PRestart {
			t.Errorf("%v: p_restart should fall with duty cycle", alg)
		}
	}
}

// TestStableTailRemovesFastFuzzyCost checks the Figure 4e headline on the
// simulator.
func TestStableTailRemovesFastFuzzyCost(t *testing.T) {
	p := smallParams()
	ff, err := Run(Config{Params: p, Options: analytic.Options{Algorithm: analytic.FastFuzzy, StableTail: true}, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	fc, err := Run(Config{Params: p, Options: analytic.Options{Algorithm: analytic.FuzzyCopy, StableTail: true}, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if ff.OverheadPerTxn > 0.3*fc.OverheadPerTxn {
		t.Errorf("FASTFUZZY (%.0f) should be far below FUZZYCOPY (%.0f)",
			ff.OverheadPerTxn, fc.OverheadPerTxn)
	}
}

// TestFullCheckpointsFlushEverything checks the full-checkpoint path.
func TestFullCheckpointsFlushEverything(t *testing.T) {
	p := smallParams()
	res, err := Run(Config{Params: p, Options: analytic.Options{Algorithm: analytic.FuzzyCopy, Full: true}, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.SegmentsPerCheckpoint != p.NumSegments() {
		t.Errorf("full checkpoint flushed %.0f segments, want %v", res.SegmentsPerCheckpoint, p.NumSegments())
	}
}

// TestSkewShrinksCheckpointWork: Zipf-concentrated updates dirty far fewer
// distinct segments, so partial checkpoints write less and finish sooner —
// the benefit the paper's uniform-load assumption hides.
func TestSkewShrinksCheckpointWork(t *testing.T) {
	p := smallParams()
	uniform, err := Run(Config{Params: p, Options: analytic.Options{Algorithm: analytic.FuzzyCopy}, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	skewed, err := Run(Config{Params: p, Options: analytic.Options{Algorithm: analytic.FuzzyCopy}, Seed: 8, Skew: 1.3})
	if err != nil {
		t.Fatal(err)
	}
	if skewed.SegmentsPerCheckpoint >= 0.7*uniform.SegmentsPerCheckpoint {
		t.Errorf("skewed work %.0f segments/ckpt, want well below uniform %.0f",
			skewed.SegmentsPerCheckpoint, uniform.SegmentsPerCheckpoint)
	}
	if skewed.MeanDurationSeconds >= uniform.MeanDurationSeconds {
		t.Error("skewed checkpoints should finish sooner")
	}
	if _, err := Run(Config{Params: p, Options: analytic.Options{Algorithm: analytic.FuzzyCopy}, Skew: 0.5}); err == nil {
		t.Error("skew ≤ 1 accepted")
	}
}

// TestCOUPeakBufferTracked: the simulator measures the old-copy buffer's
// high-water mark, which should agree in rough magnitude with the model's
// per-checkpoint copy count and be zero for non-COU algorithms.
func TestCOUPeakBufferTracked(t *testing.T) {
	p := smallParams()
	res, err := Run(Config{Params: p, Options: analytic.Options{Algorithm: analytic.COUCopy}, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	if res.COUPeakOldSegments <= 0 {
		t.Fatal("no COU peak recorded")
	}
	if res.COUPeakOldWords != float64(res.COUPeakOldSegments)*p.SSeg {
		t.Error("peak words inconsistent with peak segments")
	}
	// The peak cannot exceed the copies made in one checkpoint by much
	// (copies are consumed as the cursor passes them).
	if float64(res.COUPeakOldSegments) > 1.5*res.COUCopiesPerCkpt+5 {
		t.Errorf("peak %d vs %f copies/ckpt", res.COUPeakOldSegments, res.COUCopiesPerCkpt)
	}
	// And it should agree with the model's closed-form peak.
	ana, err := analytic.Evaluate(p, analytic.Options{Algorithm: analytic.COUCopy})
	if err != nil {
		t.Fatal(err)
	}
	modelPeakSegs := ana.COUOldBufferWords / p.SSeg
	if !within(float64(res.COUPeakOldSegments), modelPeakSegs, 0.35) {
		t.Errorf("sim peak %d vs model peak %.0f segments", res.COUPeakOldSegments, modelPeakSegs)
	}
	fz, err := Run(Config{Params: p, Options: analytic.Options{Algorithm: analytic.FuzzyCopy}, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	if fz.COUPeakOldSegments != 0 {
		t.Error("fuzzy run tracked COU buffer")
	}
}

// TestMinFloorBindsAtTrivialLoad checks the interval floor at negligible
// update rates.
func TestMinFloorBindsAtTrivialLoad(t *testing.T) {
	p := smallParams()
	p.Lambda = 1
	res, err := Run(Config{Params: p, Options: analytic.Options{Algorithm: analytic.FuzzyCopy}, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if !within(res.MeanDurationSeconds, p.MinCheckpointSeconds, 0.3) {
		t.Errorf("duration %.2fs, want ≈ floor %.2fs", res.MeanDurationSeconds, p.MinCheckpointSeconds)
	}
}
