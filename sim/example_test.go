package sim_test

import (
	"fmt"
	"log"

	"mmdb/analytic"
	"mmdb/sim"
)

// ExampleCompare runs the discrete-event simulator and the analytic model
// at the same (scaled) operating point and prints both, the repository's
// standard cross-validation.
func ExampleCompare() {
	p := analytic.DefaultParams()
	p.SDB = 4096 * 512 // scale the database down for a quick run
	p.SSeg = 4096
	p.Lambda = 200
	simRes, anaRes, err := sim.Compare(p, analytic.Options{Algorithm: analytic.COUCopy}, 1)
	if err != nil {
		log.Fatal(err)
	}
	agree := func(a, b float64) bool { return a > 0.8*b && a < 1.25*b }
	fmt.Println("durations agree:", agree(simRes.MeanDurationSeconds, anaRes.DurationSeconds))
	fmt.Println("overheads agree:", agree(simRes.OverheadPerTxn, anaRes.OverheadPerTxn))
	// Output:
	// durations agree: true
	// overheads agree: true
}
