// Package sim is a discrete-event simulator for the paper's MMDBMS
// checkpointing system — the "testbed" the authors describe as future work
// in Section 5. It executes the system model of Section 2 on a virtual
// clock: Poisson transaction arrivals update uniform random records while
// a checkpointer sweeps the segments at the disk bank's service rate.
//
// Unlike the analytic model (package analytic), which computes expectations
// in closed form, the simulator tracks every segment's dirty bits, the
// two-color boundary, and copy-on-update old versions explicitly, and
// measures the same outputs: processor overhead per transaction, restart
// probability, checkpoint duration, and recovery time. Agreement between
// the two is a consistency check on both (see sim tests and EXPERIMENTS.md).
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"mmdb/analytic"
)

// Config configures a simulation run.
type Config struct {
	// Params and Options have the same meaning as in package analytic.
	Params  analytic.Params
	Options analytic.Options
	// Seed seeds the random source (arrivals, record choices).
	Seed int64
	// Checkpoints is the number of measured checkpoint intervals
	// (default 5).
	Checkpoints int
	// Warmup is the number of leading checkpoint intervals discarded
	// while the dirty-segment population reaches steady state (default 2).
	Warmup int
	// Skew, when > 1, draws updated segments from a Zipf distribution
	// with that exponent instead of uniformly — an extension beyond the
	// paper's uniform load model. Skew concentrates dirtiness in few
	// segments, which shrinks partial-checkpoint work. Segment identities
	// are permuted so the hot set is not one contiguous run.
	Skew float64
}

// Result reports measured quantities over the measurement window.
type Result struct {
	Config Config

	// Checkpoint geometry (means over measured checkpoints).
	MeanDurationSeconds   float64
	MeanActiveSeconds     float64
	DutyCycle             float64
	SegmentsPerCheckpoint float64

	// Transactions.
	TxnsCommitted    int
	TxnAttempts      int
	ColorAborts      int
	PRestart         float64 // ColorAborts / TxnAttempts
	COUCopies        int
	COUCopiesPerCkpt float64
	// COUPeakOldSegments is the high-water mark of simultaneously live
	// old-version copies — the paper's warning that the COU snapshot
	// buffer "could grow to be as large as the database itself" —
	// and COUPeakOldWords is that peak in words of buffer memory. For
	// HOURGLASS the engine bounds the peak at the window; the simulator
	// approximates writer blocking (see ZigzagFlips/HourglassWaits), so
	// its peak may transiently exceed the window between drains.
	COUPeakOldSegments int
	COUPeakOldWords    float64

	// ZigzagFlips counts updater-side image flips (ZIGZAG only: the
	// first update of each segment during an active checkpoint copies it
	// onto the shadow image). HourglassWaits counts updates that found
	// the hourglass old-copy window exhausted (HOURGLASS only; the real
	// engine blocks the writer until the checkpointer frees a buffer —
	// the simulator charges the copy and counts the stall).
	ZigzagFlips        int
	ZigzagFlipsPerCkpt float64
	HourglassWaits     int

	// Processor overhead, instructions per committed transaction.
	OverheadPerTxn      float64
	SyncOverheadPerTxn  float64
	AsyncOverheadPerTxn float64

	// Log and recovery (recovery uses the paper's I/O-bound formula with
	// the measured duration and log rate).
	LogWordsPerSecond float64
	RecoverySeconds   float64
	BackupReadSeconds float64
	LogReadSeconds    float64
}

type segment struct {
	dirty [2]bool
	// epochUpdated is the checkpoint ID of the last update, used to
	// detect "updated since this checkpoint began" without per-checkpoint
	// resets.
	epochUpdated uint64
	// hasOld marks a preserved old version (COU or hourglass) for the
	// current checkpoint; oldDirty snapshots the dirty bits at
	// preservation time.
	hasOld   bool
	oldDirty [2]bool
	// snapNeed is the zigzag dump set, latched at checkpoint begin
	// (segments dirtied after begin wait for the next checkpoint).
	snapNeed bool
	// paintedEpoch is the checkpoint ID that last processed the segment
	// (hourglass paints out of sweep order when draining old copies).
	paintedEpoch uint64
}

// sim carries the evolving simulation state.
type sim struct {
	cfg  Config
	p    analytic.Params
	o    analytic.Options
	rng  *rand.Rand
	segs []segment
	nseg int
	nru  int
	// zipf and perm implement skewed segment selection (nil when uniform).
	zipf *rand.Zipf
	perm []int

	now         float64
	nextArrival float64
	// retries holds scheduled re-executions of two-color-aborted
	// transactions (independent-retry model); a min-heap of times.
	retries retryHeap
	// dEst is the estimated steady-state interval, used to spread
	// independent retries across the boundary sweep.
	dEst float64

	// Checkpoint-in-progress state.
	ckptID   uint64
	active   bool
	boundary int // segments [0,boundary) processed (black)
	target   int

	// Hourglass window state: hgWindow is the buffer count W;
	// pendingOlds lists segments holding a preserved old copy, in
	// preservation order, for the checkpointer's out-of-order drain.
	hgWindow    int
	pendingOlds []int

	// Accumulators (whole run; measurement window handled by snapshots).
	committed   int
	attempts    int
	colorAborts int
	couCopies   int
	couLiveOld  int
	couPeakOld  int
	zigzagFlips int
	hgWaits     int
	syncInstr   float64
	asyncInstr  float64
	logWords    float64
}

type snapshot struct {
	committed, attempts, colorAborts, couCopies int
	zigzagFlips, hgWaits                        int
	syncInstr, asyncInstr, logWords             float64
	now                                         float64
}

func (s *sim) snap() snapshot {
	return snapshot{
		committed: s.committed, attempts: s.attempts, colorAborts: s.colorAborts,
		couCopies: s.couCopies, zigzagFlips: s.zigzagFlips, hgWaits: s.hgWaits,
		syncInstr: s.syncInstr, asyncInstr: s.asyncInstr,
		logWords: s.logWords, now: s.now,
	}
}

// Run executes the simulation and reports measured metrics.
func Run(cfg Config) (*Result, error) {
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Options.Validate(); err != nil {
		return nil, err
	}
	if cfg.Checkpoints == 0 {
		cfg.Checkpoints = 5
	}
	if cfg.Checkpoints < 1 {
		return nil, errors.New("sim: Checkpoints must be positive")
	}
	if cfg.Warmup == 0 {
		cfg.Warmup = 2
	}
	if cfg.Warmup < 0 {
		return nil, errors.New("sim: negative Warmup")
	}
	nseg := int(cfg.Params.NumSegments())
	if nseg < 1 {
		return nil, errors.New("sim: database smaller than one segment")
	}
	if float64(nseg) != cfg.Params.NumSegments() {
		return nil, fmt.Errorf("sim: S_db (%v) must be a whole number of segments of S_seg (%v)",
			cfg.Params.SDB, cfg.Params.SSeg)
	}

	s := &sim{
		cfg:  cfg,
		p:    cfg.Params,
		o:    cfg.Options,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
		segs: make([]segment, nseg),
		nseg: nseg,
		nru:  int(math.Round(cfg.Params.NRU)),
	}
	if s.nru < 1 {
		s.nru = 1
	}
	s.hgWindow = int(cfg.Options.HourglassWindowSegments)
	if s.hgWindow == 0 {
		s.hgWindow = analytic.DefaultHourglassWindowSegments
	}
	if cfg.Skew != 0 {
		if cfg.Skew <= 1 {
			return nil, errors.New("sim: Skew must be > 1 (or 0 for uniform)")
		}
		s.zipf = rand.NewZipf(s.rng, cfg.Skew, 1, uint64(nseg-1))
		s.perm = s.rng.Perm(nseg)
	}
	s.scheduleArrival()

	// Lead-in: run plain transaction processing for one would-be interval
	// so the first checkpoint sees a realistic dirty population.
	leadIn := s.p.MinCheckpointSeconds
	if est := analyticDuration(s.p, s.o); est > leadIn {
		leadIn = est
	}
	s.dEst = leadIn
	s.processEventsUntil(leadIn)
	s.now = leadIn

	var durations, actives, flushed []float64
	var mark snapshot
	total := cfg.Warmup + cfg.Checkpoints
	for k := 0; k < total; k++ {
		if k == cfg.Warmup {
			mark = s.snap()
		}
		d, a, w := s.runCheckpoint(uint64(k + 1))
		if k >= cfg.Warmup {
			durations = append(durations, d)
			actives = append(actives, a)
			flushed = append(flushed, w)
		}
	}
	end := s.snap()

	res := &Result{Config: cfg}
	res.MeanDurationSeconds = mean(durations)
	res.MeanActiveSeconds = mean(actives)
	if res.MeanDurationSeconds > 0 {
		res.DutyCycle = res.MeanActiveSeconds / res.MeanDurationSeconds
	}
	res.SegmentsPerCheckpoint = mean(flushed)
	res.TxnsCommitted = end.committed - mark.committed
	res.TxnAttempts = end.attempts - mark.attempts
	res.ColorAborts = end.colorAborts - mark.colorAborts
	res.COUCopies = end.couCopies - mark.couCopies
	res.COUCopiesPerCkpt = float64(res.COUCopies) / float64(cfg.Checkpoints)
	if res.TxnAttempts > 0 {
		res.PRestart = float64(res.ColorAborts) / float64(res.TxnAttempts)
	}
	res.COUPeakOldSegments = s.couPeakOld
	res.COUPeakOldWords = float64(s.couPeakOld) * s.p.SSeg
	res.ZigzagFlips = end.zigzagFlips - mark.zigzagFlips
	res.ZigzagFlipsPerCkpt = float64(res.ZigzagFlips) / float64(cfg.Checkpoints)
	res.HourglassWaits = end.hgWaits - mark.hgWaits
	if res.TxnsCommitted > 0 {
		res.SyncOverheadPerTxn = (end.syncInstr - mark.syncInstr) / float64(res.TxnsCommitted)
		res.AsyncOverheadPerTxn = (end.asyncInstr - mark.asyncInstr) / float64(res.TxnsCommitted)
		res.OverheadPerTxn = res.SyncOverheadPerTxn + res.AsyncOverheadPerTxn
	}
	elapsed := end.now - mark.now
	if elapsed > 0 {
		res.LogWordsPerSecond = (end.logWords - mark.logWords) / elapsed
	}

	// Recovery time, as in the analytic model: read the backup copy plus
	// the expected 1.5·D of log at the measured log rate.
	res.BackupReadSeconds = float64(s.nseg) * s.p.SegmentIOTime() / s.p.NDisks
	res.LogReadSeconds = s.p.TSeek + res.LogWordsPerSecond*1.5*res.MeanDurationSeconds*s.p.TTrans/s.p.NDisks
	res.RecoverySeconds = res.BackupReadSeconds + res.LogReadSeconds
	return res, nil
}

// analyticDuration estimates the steady-state interval for the lead-in.
func analyticDuration(p analytic.Params, o analytic.Options) float64 {
	r, err := analytic.Evaluate(p, o)
	if err != nil {
		return p.MinCheckpointSeconds
	}
	return r.DurationSeconds
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	t := 0.0
	for _, x := range xs {
		t += x
	}
	return t / float64(len(xs))
}

// retryHeap is a min-heap of scheduled retry times.
type retryHeap []float64

func (h retryHeap) Len() int            { return len(h) }
func (h retryHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h retryHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *retryHeap) Push(x interface{}) { *h = append(*h, x.(float64)) }
func (h *retryHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// pickSegment draws the segment of one record update: uniform (the
// paper's load model) or Zipf-skewed (the extension).
func (s *sim) pickSegment() int {
	if s.zipf == nil {
		return s.rng.Intn(s.nseg)
	}
	return s.perm[int(s.zipf.Uint64())]
}

func (s *sim) scheduleArrival() {
	s.nextArrival = s.now + s.rng.ExpFloat64()/s.p.Lambda
}

// processEventsUntil runs every transaction event (fresh arrival or
// scheduled retry) with a timestamp before t. It does not move s.now —
// the caller owns the clock.
func (s *sim) processEventsUntil(t float64) {
	for {
		at := s.nextArrival
		isRetry := false
		if len(s.retries) > 0 && s.retries[0] < at {
			at = s.retries[0]
			isRetry = true
		}
		if at >= t {
			return
		}
		if isRetry {
			heap.Pop(&s.retries)
		} else {
			s.nextArrival = at + s.rng.ExpFloat64()/s.p.Lambda
		}
		s.runTxn(at)
	}
}

// runTxn executes one transaction attempt at virtual time t. Two-color
// aborts are re-executed according to the configured retry model:
// immediately (correlated — the boundary has not moved) or after a delay
// that re-samples the boundary position (independent, the default).
func (s *sim) runTxn(t float64) {
	lsnActive := s.o.Algorithm.UsesLSN() && !s.o.StableTail
	perUpdateWords := s.p.SRec + s.p.LogHeaderWords
	if s.o.LogicalLogging {
		perUpdateWords = s.p.LogicalOperandWords + s.p.LogHeaderWords
	}
	for {
		s.attempts++
		segIdx := make([]int, s.nru)
		for i := range segIdx {
			segIdx[i] = s.pickSegment()
		}
		if s.active && s.o.Algorithm.TwoColor() {
			sawBlack, sawWhite := false, false
			for _, idx := range segIdx {
				if idx < s.boundary {
					sawBlack = true
				} else {
					sawWhite = true
				}
			}
			if sawBlack && sawWhite {
				// Aborted at its first mixed access: partial work, restart
				// bookkeeping, and dead redo weight in the log.
				s.colorAborts++
				cost := s.p.AbortWorkFraction*s.p.CTrans + s.p.CRestart
				if lsnActive {
					cost += s.p.AbortWorkFraction * s.p.NRU * s.p.CLSN
				}
				s.syncInstr += cost
				s.logWords += s.p.AbortWorkFraction*s.p.NRU*perUpdateWords + s.p.CommitRecWords
				if s.o.Retry == analytic.CorrelatedRetries {
					continue // immediate rerun at the same boundary
				}
				heap.Push(&s.retries, t+s.rng.Float64()*s.dEst)
				return
			}
		}

		// The attempt commits: install updates.
		for _, idx := range segIdx {
			seg := &s.segs[idx]
			if s.active {
				switch {
				case s.o.Algorithm.CopyOnUpdate():
					if idx >= s.boundary && seg.epochUpdated != s.ckptID && !seg.hasOld {
						// First post-begin update of a not-yet-dumped segment:
						// preserve the old version (Figure 3.2).
						seg.hasOld = true
						seg.oldDirty = seg.dirty
						s.couCopies++
						s.couLiveOld++
						if s.couLiveOld > s.couPeakOld {
							s.couPeakOld = s.couLiveOld
						}
						s.syncInstr += s.p.CAlloc + s.p.SSeg + 2*s.p.CLock
					}
				case s.o.Algorithm == analytic.Zigzag:
					if seg.epochUpdated != s.ckptID {
						// First update since checkpoint begin: flip the
						// live image onto the shadow slab, parking the
						// begin-state image (no allocation).
						s.zigzagFlips++
						s.syncInstr += s.p.SSeg + 2*s.p.CLock
					}
				case s.o.Algorithm == analytic.Hourglass:
					if seg.paintedEpoch != s.ckptID && seg.epochUpdated != s.ckptID && !seg.hasOld {
						// Windowed COU: preserve into a pool buffer. The
						// real engine blocks the writer when all W buffers
						// are held; the simulator counts the stall and
						// charges the copy that follows it (the
						// checkpointer's drain frees a buffer promptly).
						if s.couLiveOld >= s.hgWindow {
							s.hgWaits++
						}
						seg.hasOld = true
						seg.oldDirty = seg.dirty
						s.couCopies++
						s.couLiveOld++
						if s.couLiveOld > s.couPeakOld {
							s.couPeakOld = s.couLiveOld
						}
						s.syncInstr += s.p.SSeg + 2*s.p.CLock // pool buffer: no alloc
						s.pendingOlds = append(s.pendingOlds, idx)
					}
				}
			}
			seg.dirty[0], seg.dirty[1] = true, true
			if s.active {
				seg.epochUpdated = s.ckptID
			}
		}
		if lsnActive || s.o.Algorithm.RequiresQuiesce() {
			s.syncInstr += s.p.NRU * s.p.CLSN // LSN / timestamp upkeep
		}
		s.logWords += s.p.NRU*perUpdateWords + s.p.CommitRecWords
		s.committed++
		return
	}
}

// hgDrain processes every pending hourglass old copy out of sweep order,
// flushing the preserved image where the target copy needs it and
// returning the pool buffer (modeled by decrementing the live count).
// The segment is painted so the in-order cursor skips it.
func (s *sim) hgDrain(id uint64, perFlushInstr, flushTime float64, flushed *int) {
	for _, idx := range s.pendingOlds {
		seg := &s.segs[idx]
		if !seg.hasOld {
			continue
		}
		seg.hasOld = false
		seg.paintedEpoch = id
		s.couLiveOld--
		if s.o.Full || seg.oldDirty[s.target] {
			*flushed++
			s.asyncInstr += perFlushInstr
			s.now += flushTime
		}
	}
	s.pendingOlds = s.pendingOlds[:0]
}

// runCheckpoint simulates one checkpoint cycle and returns its duration,
// active time, and flushed segment count.
func (s *sim) runCheckpoint(id uint64) (duration, activeTime, flushedSegs float64) {
	start := s.now
	s.ckptID = id
	s.target = int((id - 1) % 2)
	s.boundary = 0
	s.active = true

	lsnActive := s.o.Algorithm.UsesLSN() && !s.o.StableTail
	perFlushInstr := s.p.CIO
	if lsnActive {
		perFlushInstr += s.p.CLSN
	}
	flushTime := s.p.SegmentIOTime() / s.p.NDisks
	flushed := 0

	// Zigzag arms its dump set at begin: only segments dirty for the
	// target copy when the checkpoint starts are captured this run
	// (updates after begin flip onto the shadow and wait for the next).
	if s.o.Algorithm == analytic.Zigzag {
		for i := range s.segs {
			s.segs[i].snapNeed = s.o.Full || s.segs[i].dirty[s.target]
		}
	}

	for i := 0; i < s.nseg; i++ {
		if s.o.Algorithm == analytic.Hourglass {
			s.hgDrain(id, perFlushInstr, flushTime, &flushed)
			seg := &s.segs[i]
			if seg.paintedEpoch != id {
				seg.paintedEpoch = id
				if s.o.Full || seg.dirty[s.target] {
					seg.dirty[s.target] = false
					flushed++
					s.asyncInstr += perFlushInstr
					s.now += flushTime
				}
			}
			s.boundary = i + 1
			s.processEventsUntil(s.now)
			continue
		}

		seg := &s.segs[i]
		var needFlush, fromOld bool
		switch {
		case seg.hasOld:
			needFlush = s.o.Full || seg.oldDirty[s.target]
			fromOld = true
			seg.hasOld = false
			s.couLiveOld--
		case s.o.Algorithm == analytic.Zigzag:
			// Capture from the live image if the segment has not flipped
			// this checkpoint (its dirty bit then clears); a flipped
			// segment is captured from the parked shadow image and stays
			// dirty for the next checkpoint of this copy.
			needFlush = seg.snapNeed
			seg.snapNeed = false
			if needFlush && seg.epochUpdated != id {
				seg.dirty[s.target] = false
			}
		default:
			needFlush = s.o.Full || seg.dirty[s.target]
			if needFlush {
				seg.dirty[s.target] = false
			}
		}
		if needFlush {
			flushed++
			s.asyncInstr += perFlushInstr
			switch {
			case s.o.Algorithm == analytic.FuzzyCopy || s.o.Algorithm == analytic.TwoColorCopy:
				s.asyncInstr += s.p.SSeg + s.p.CAlloc
			case s.o.Algorithm == analytic.COUCopy && !fromOld:
				s.asyncInstr += s.p.SSeg + s.p.CAlloc
			}
			s.now += flushTime
		}
		s.boundary = i + 1
		s.processEventsUntil(s.now)
	}
	if s.o.Algorithm == analytic.Hourglass {
		// Final drain: preserved segments behind the cursor still hold
		// pool buffers.
		s.hgDrain(id, perFlushInstr, flushTime, &flushed)
	}

	// Per-sweep segment locking, dirty scan, and fixed costs.
	if s.o.Algorithm.LocksSegments() {
		s.asyncInstr += 2 * s.p.CLock * float64(s.nseg)
	}
	if !s.o.Full {
		s.asyncInstr += s.p.CDirtyCheck * float64(s.nseg)
	}
	s.asyncInstr += s.p.CCkptFixed

	s.active = false
	activeTime = s.now - start

	// Idle until the configured interval (or the minimum floor) elapses.
	duration = activeTime
	if s.o.IntervalSeconds > duration {
		duration = s.o.IntervalSeconds
	}
	if s.p.MinCheckpointSeconds > duration {
		duration = s.p.MinCheckpointSeconds
	}
	endAt := start + duration
	s.processEventsUntil(endAt)
	s.now = endAt
	// Refine the retry-spread horizon with the observed duration.
	s.dEst = duration
	return duration, activeTime, float64(flushed)
}

// Compare evaluates both the simulator and the analytic model at the same
// operating point and returns them side by side (used by cmd/figures and
// the agreement tests).
func Compare(p analytic.Params, o analytic.Options, seed int64) (*Result, *analytic.Result, error) {
	simRes, err := Run(Config{Params: p, Options: o, Seed: seed})
	if err != nil {
		return nil, nil, err
	}
	anaRes, err := analytic.Evaluate(p, o)
	if err != nil {
		return nil, nil, err
	}
	return simRes, anaRes, nil
}
