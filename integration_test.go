package mmdb

import (
	"bytes"
	"encoding/binary"
	"errors"
	"sync"
	"testing"

	"mmdb/analytic"
	"mmdb/workload"
)

// TestApplyOpPublicAPI covers the logical-logging surface of the public
// API, including recovery of a delta-only workload.
func TestApplyOpPublicAPI(t *testing.T) {
	cfg := testConfig(t, COUCopy)
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	err = db.Exec(func(tx *Txn) error {
		if err := tx.ApplyOp(1, OpAdd64, Add64Operand(40)); err != nil {
			return err
		}
		if err := tx.ApplyOp(1, OpAdd64, Add64Operand(2)); err != nil {
			return err
		}
		return tx.ApplyOp(2, OpStoreAt, StoreAtOperand(4, []byte("tag")))
	})
	if err != nil {
		t.Fatal(err)
	}
	v, err := db.ReadRecord(1)
	if err != nil {
		t.Fatal(err)
	}
	if got := binary.LittleEndian.Uint64(v); got != 42 {
		t.Errorf("record 1 = %d, want 42", got)
	}
	if st := db.Stats(); st.LogicalOps != 3 {
		t.Errorf("LogicalOps = %d", st.LogicalOps)
	}
	if _, err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := db.Exec(func(tx *Txn) error {
		return tx.ApplyOp(1, OpAdd64, Add64Operand(-2))
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.Crash(); err != nil {
		t.Fatal(err)
	}
	db2, rep, err := Recover(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if rep.LogicalReplayed == 0 {
		t.Error("no logical records replayed")
	}
	v, err = db2.ReadRecord(1)
	if err != nil {
		t.Fatal(err)
	}
	if got := binary.LittleEndian.Uint64(v); got != 40 {
		t.Errorf("recovered record 1 = %d, want 40", got)
	}
	v2, err := db2.ReadRecord(2)
	if err != nil {
		t.Fatal(err)
	}
	if string(v2[4:7]) != "tag" {
		t.Errorf("recovered record 2 = %q", v2[4:7])
	}
}

func TestApplyOpRejectedOutsideCOU(t *testing.T) {
	db, err := Open(testConfig(t, FuzzyCopy))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.ApplyOp(0, OpAdd64, Add64Operand(1)); !errors.Is(err, ErrLogicalLoggingUnsupported) {
		t.Errorf("err = %v, want ErrLogicalLoggingUnsupported", err)
	}
}

func TestCustomOperationThroughConfig(t *testing.T) {
	cfg := testConfig(t, COUFlush)
	negate := func(rec, operand []byte) error {
		v := int64(binary.LittleEndian.Uint64(rec))
		binary.LittleEndian.PutUint64(rec, uint64(-v))
		return nil
	}
	cfg.Operations = map[OpCode]OpFunc{OpCode(77): negate}
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Exec(func(tx *Txn) error {
		if err := tx.ApplyOp(3, OpAdd64, Add64Operand(9)); err != nil {
			return err
		}
		return tx.ApplyOp(3, OpCode(77), nil)
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.Crash(); err != nil {
		t.Fatal(err)
	}
	db2, _, err := Recover(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	v, err := db2.ReadRecord(3)
	if err != nil {
		t.Fatal(err)
	}
	if got := int64(binary.LittleEndian.Uint64(v)); got != -9 {
		t.Errorf("recovered record 3 = %d, want -9", got)
	}
}

// TestLiveEngineAllAlgorithms runs the paper's load model on the real
// engine under every algorithm with back-to-back checkpoints and asserts
// the robust (scheduling-independent) parts of Figure 4a: only two-color
// algorithms restart transactions, only copying algorithms move segments,
// FASTFUZZY is the cheapest by construction, and the measured-counter
// pricing returns sane values. (The statistical p_restart magnitude is
// asserted deterministically in the engine tests via fault-injection
// pauses, and demonstrated at scale by cmd/ckptbench and
// examples/inventory — on a loaded single-CPU machine the sweep-overlap
// statistics here are too noisy for a hard threshold.)
func TestLiveEngineAllAlgorithms(t *testing.T) {
	if testing.Short() {
		t.Skip("live-engine sweep")
	}
	const txns = 1200
	overhead := map[Algorithm]float64{}
	restarts := map[Algorithm]float64{}
	stats := map[Algorithm]Stats{}
	for _, alg := range Algorithms {
		cfg := testConfig(t, alg)
		cfg.NumRecords = 16384
		cfg.AutoCheckpoint = true
		db, err := Open(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Concurrent writers keep transactions in flight throughout the
		// checkpoint sweeps, so the two-color boundary is actually
		// exercised (a serial committer can dodge every sweep).
		const writers = 4
		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				gen, err := workload.NewUniform(cfg.NumRecords, 5, cfg.RecordBytes, int64(alg)*10+int64(w))
				if err != nil {
					t.Error(err)
					return
				}
				for i := 0; i < txns/writers; i++ {
					spec := gen.Next()
					err := db.Exec(func(tx *Txn) error {
						for _, u := range spec.Updates {
							if err := tx.Write(u.Record, u.Value); err != nil {
								return err
							}
						}
						return nil
					})
					if err != nil {
						t.Errorf("%v txn: %v", alg, err)
						return
					}
				}
			}(w)
		}
		wg.Wait()
		db.StopCheckpointLoop()
		if t.Failed() {
			db.Close()
			return
		}
		per, syncC, asyncC, err := analytic.MeasuredOverhead(analytic.DefaultParams(), db.MeasuredCounts())
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if per <= 0 || syncC < 0 || asyncC <= 0 || per != syncC+asyncC {
			t.Errorf("%v: implausible measured overhead %f = %f + %f", alg, per, syncC, asyncC)
		}
		overhead[alg] = per
		restarts[alg] = db.Stats().PRestart()
		stats[alg] = db.Stats()
		db.Close()
	}

	// Only two-color algorithms ever restart transactions.
	for _, alg := range []Algorithm{FuzzyCopy, FastFuzzy, COUFlush, COUCopy} {
		if restarts[alg] != 0 {
			t.Errorf("%v restarted transactions (p=%.3f)", alg, restarts[alg])
		}
	}
	// Every algorithm committed the full workload and checkpointed.
	for alg, st := range stats {
		if st.TxnsCommitted != txns {
			t.Errorf("%v committed %d of %d", alg, st.TxnsCommitted, txns)
		}
		if st.Checkpoints == 0 || st.SegmentsFlushed == 0 {
			t.Errorf("%v: no checkpoint activity: %+v", alg, st)
		}
	}
	// Copy accounting matches the algorithm's structure.
	for _, alg := range Algorithms {
		copies := stats[alg].CheckpointerCopies
		if alg.CopiesSegments() && copies == 0 {
			t.Errorf("%v made no checkpointer copies", alg)
		}
		if !alg.CopiesSegments() && alg != COUFlush && copies != 0 {
			t.Errorf("%v made %d checkpointer copies", alg, copies)
		}
	}
	if stats[COUFlush].COUCopies == 0 && stats[COUCopy].COUCopies == 0 {
		t.Log("note: no COU old-version copies were triggered this run (short sweep overlap)")
	}
	// FASTFUZZY does strictly less work than FUZZYCOPY per flushed segment.
	if overhead[FastFuzzy] >= overhead[FuzzyCopy] {
		t.Errorf("live engine: FASTFUZZY (%.0f) should be below FUZZYCOPY (%.0f)",
			overhead[FastFuzzy], overhead[FuzzyCopy])
	}
	// If the scheduler produced restarts, the Figure 4a ordering holds.
	for _, tc := range []Algorithm{TwoColorFlush, TwoColorCopy} {
		if restarts[tc] > 0.05 && overhead[tc] < overhead[COUFlush] {
			t.Errorf("live engine: %v (%.0f, p=%.2f) should exceed COUFLUSH (%.0f) once restarts occur",
				tc, overhead[tc], restarts[tc], overhead[COUFlush])
		}
	}
}

// TestArchiveRestorePublicAPI round-trips a database through the archive
// format at the public surface.
func TestArchiveRestorePublicAPI(t *testing.T) {
	cfg := testConfig(t, COUCopy)
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Exec(func(tx *Txn) error { return tx.Write(9, []byte("archived")) }); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := db.Exec(func(tx *Txn) error { return tx.Write(10, []byte("tail")) }); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	segs, logBytes, err := Archive(cfg.Dir, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if segs == 0 || logBytes == 0 {
		t.Fatalf("archived %d segs, %d log bytes", segs, logBytes)
	}

	cfg2 := cfg
	cfg2.Dir = t.TempDir()
	info, err := RestoreArchive(&buf, cfg2.Dir)
	if err != nil {
		t.Fatal(err)
	}
	if info.CheckpointID != 1 || info.Algorithm != "COUCOPY" {
		t.Errorf("restore info = %+v", info)
	}
	db2, rep, err := Recover(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if rep.CheckpointID != 1 {
		t.Errorf("recovered checkpoint %d", rep.CheckpointID)
	}
	v9, _ := db2.ReadRecord(9)
	v10, _ := db2.ReadRecord(10)
	if string(v9[:8]) != "archived" || string(v10[:4]) != "tail" {
		t.Errorf("restored values: %q %q", v9[:8], v10[:4])
	}
}

// TestLogCompactionVisibleInStats checks the public stats surface the
// compaction feature added.
func TestLogCompactionVisibleInStats(t *testing.T) {
	cfg := testConfig(t, FuzzyCopy)
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for round := 0; round < 3; round++ {
		for i := 0; i < 20; i++ {
			if err := db.Exec(func(tx *Txn) error {
				return tx.Write(uint64(i), []byte{byte(round)})
			}); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := db.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	st := db.Stats()
	if st.LogCompactions == 0 || st.LogBytesCompacted == 0 {
		t.Errorf("no compaction visible in stats: %+v", st)
	}
}
